// Write-ahead log.
//
// Mirrors SQLite's WAL design, which the paper relies on for ACID updates
// and single-writer/multi-reader snapshot isolation (§3.6): committed
// transactions append page images ("frames") to a side log; readers resolve
// a page to the newest frame at-or-before their snapshot; a checkpoint
// copies the newest frames back into the main file. Checkpoints are
// *incremental*: a persistent backfill watermark in the WAL file header
// records how many leading frames have already been folded into the main
// file, so a checkpoint that is cut short by a live reader horizon resumes
// where it left off, and recovery skips re-indexing the folded prefix.
// See docs/ARCHITECTURE.md for the full frame lifecycle.
#ifndef MICRONN_STORAGE_WAL_H_
#define MICRONN_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/file.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace micronn {

/// Append-only WAL file plus its in-memory index.
///
/// File layout: a 64-byte header (magic, format version, backfill
/// watermark) followed by fixed-size frames. Frame numbers are 1-based and
/// positional: frame `f` lives at byte offset `kHeaderSize + (f-1) *
/// kFrameSize`.
///
/// Internally synchronized for the pager's concurrency model: any number
/// of snapshot readers call FindFrame/ReadFrame concurrently with the one
/// writer appending commits. The frame index is guarded by a shared_mutex
/// that the writer holds only for the in-memory publish step — never
/// across the commit append or its fsync — so readers are not stalled by
/// commit I/O. Frame payload reads are positional preads with no lock at
/// all: frames are immutable once published, and Reset (which recycles
/// frame numbers) only runs when the pager has verified no reader is
/// active.
class Wal {
 public:
  /// WAL file header: magic + version + backfill watermark + checksum,
  /// zero-padded to 64 bytes. Rewritten in place after each checkpoint
  /// step; a stale (lower) watermark on disk is always safe because
  /// re-folding an already-folded frame is idempotent.
  static constexpr size_t kHeaderSize = 64;
  static constexpr uint32_t kWalMagic = 0x4C41574D;  // "MWAL"
  static constexpr uint32_t kFormatVersion = 2;

  /// Frame layout: 32-byte header + page image.
  static constexpr size_t kFrameHeaderSize = 32;
  static constexpr size_t kFrameSize = kFrameHeaderSize + kPageSize;
  static constexpr uint32_t kFrameMagic = 0x4D4E4E57;  // "WNNM"

  /// Opens (creating if missing) the WAL at `path` and recovers its index:
  /// frames of incomplete or corrupt trailing commits are discarded and the
  /// file is truncated to the last durable commit. Frames at-or-below the
  /// persisted backfill watermark are scanned (their commit chain still
  /// validates the log) but not indexed — their content already lives in
  /// the main database file.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           IoStats* stats);

  /// Same recovery over an already-open handle. The pager uses this to
  /// route the WAL through a selected I/O backend (or a test's
  /// fault-injection wrapper, PagerOptions::file_wrapper).
  static Result<std::unique_ptr<Wal>> Open(std::unique_ptr<FileHandle> file,
                                           IoStats* stats);

  /// Appends one committed transaction: every (page, image) pair in
  /// `pages`, the last frame carrying the commit marker for `commit_seq`.
  /// If `sync` is true the file is fdatasync'd before returning. On success
  /// the index reflects the new frames and `*first_frame` (if non-null) is
  /// set to the 1-based number of the commit's first frame — pages[i] is
  /// frame `*first_frame + i`. The file append and fsync happen before the
  /// index publish, so concurrent FindFrame callers only ever see fully
  /// written frames; single writer (serialized by the pager). Frames are
  /// placed positionally at the frame-count offset (not appended at the
  /// file size), so a failed commit's orphaned tail can never skew later
  /// frame numbering; on failure the tail is also truncated best-effort so
  /// restart recovery does not replay the failed commit.
  Status AppendCommit(
      const std::vector<std::pair<PageId, const Page*>>& pages,
      uint64_t commit_seq, bool sync, uint64_t* first_frame = nullptr);

  /// Newest frame for `page` with commit sequence <= `snapshot_seq`.
  /// Frame numbers returned are 1-based (0 is reserved for "main file").
  /// Thread-safe against the writer's index publish.
  std::optional<uint64_t> FindFrame(PageId page, uint64_t snapshot_seq) const;

  /// Reads the page image of 1-based frame `frame_no` with a positional
  /// pread and no lock. Callers must hold a registered reader snapshot (or
  /// be the writer) so the frame cannot be recycled by a checkpoint Reset
  /// mid-read.
  Status ReadFrame(uint64_t frame_no, Page* out) const;

  /// One batched frame read of a Pager::ReadPages miss set. ops[i].second
  /// receives the page image of 1-based frame ops[i].first; per-frame
  /// outcomes land in (*per_op)[i] (sized by this call). The return value
  /// reports transport-level failure only, so a best-effort prefetch can
  /// keep the frames that did arrive. Same locking contract as ReadFrame.
  Status ReadFrameBatch(const std::vector<std::pair<uint64_t, Page*>>& ops,
                        std::vector<Status>* per_op) const;

  /// Page -> newest frame (1-based) among commits <= `seq`; the checkpoint
  /// working set. Entries whose frame number is at-or-below the backfill
  /// watermark are already folded into the main file.
  std::map<PageId, uint64_t> LatestFrames(uint64_t seq) const;

  /// Number of frames that belong to commits with sequence <= `seq` — the
  /// backfill target for a checkpoint whose reader horizon is `seq`.
  /// Commits occupy contiguous frame ranges in sequence order, so this is
  /// always a frame-count prefix of the log.
  uint64_t FramesThrough(uint64_t seq) const;

  /// Records that the leading `frames` frames (covering commits through
  /// `seq`) have been folded into the main file, and persists the new
  /// watermark in the WAL header. The caller must have fsynced both the
  /// WAL (so the folded frames cannot be torn behind the watermark) and
  /// the main file (so the folded images are durable) first. The header
  /// rewrite is deliberately *not* fsynced: losing it only lowers the
  /// on-disk watermark, and re-folding is idempotent. Monotonic; a value
  /// below the current watermark is an error.
  Status AdvanceBackfillWatermark(uint64_t frames, uint64_t seq);

  /// Discards all frames, truncates the file to the header, and resets the
  /// backfill watermark to zero. The watermark reset is fsynced before
  /// returning: unlike an advance, a *stale-high* watermark over a fresh
  /// frame generation would make recovery skip frames that were never
  /// folded. Only called once every frame is backfilled and no reader is
  /// registered.
  Status Reset();

  /// fdatasync the WAL file (counted in IoStats::wal_syncs).
  Status Sync();

  uint64_t frame_count() const {
    return frame_count_.load(std::memory_order_acquire);
  }
  uint64_t last_committed_seq() const {
    return last_committed_seq_.load(std::memory_order_acquire);
  }
  /// Frames already folded into the main file (prefix of the log).
  uint64_t backfill_watermark() const {
    return backfill_watermark_.load(std::memory_order_acquire);
  }
  /// Commit sequence the backfill watermark corresponds to.
  uint64_t backfill_seq() const {
    return backfill_seq_.load(std::memory_order_acquire);
  }

 private:
  Wal(std::unique_ptr<FileHandle> file, IoStats* stats)
      : file_(std::move(file)), stats_(stats) {}

  Status Recover();
  // Serializes the current watermark into the on-disk header (in place).
  Status WriteHeader();

  std::unique_ptr<FileHandle> file_;
  IoStats* stats_;
  std::atomic<uint64_t> frame_count_{0};         // valid frames in the file
  std::atomic<uint64_t> last_committed_seq_{0};  // 0 = empty WAL
  std::atomic<uint64_t> backfill_watermark_{0};  // frames folded into main
  std::atomic<uint64_t> backfill_seq_{0};        // seq folded through
  // Guards index_ and commit_bounds_. Readers (FindFrame/LatestFrames/
  // FramesThrough) take it shared; the writer takes it exclusive only for
  // the brief in-memory publish at the end of AppendCommit and during
  // Reset.
  mutable std::shared_mutex index_mutex_;
  // page -> [(commit_seq, frame_no)] in append (= ascending seq) order.
  std::unordered_map<PageId, std::vector<std::pair<uint64_t, uint64_t>>>
      index_;
  // (commit_seq, last frame of that commit) in append order; binary-searched
  // by FramesThrough to turn a reader-horizon sequence into a frame prefix.
  std::vector<std::pair<uint64_t, uint64_t>> commit_bounds_;
};

}  // namespace micronn

#endif  // MICRONN_STORAGE_WAL_H_

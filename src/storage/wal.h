// Write-ahead log.
//
// Mirrors SQLite's WAL design, which the paper relies on for ACID updates
// and single-writer/multi-reader snapshot isolation (§3.6): committed
// transactions append page images ("frames") to a side log; readers resolve
// a page to the newest frame at-or-before their snapshot; a checkpoint
// copies the newest frames back into the main file when no reader needs
// the history.
#ifndef MICRONN_STORAGE_WAL_H_
#define MICRONN_STORAGE_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/file.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace micronn {

/// Append-only WAL file plus its in-memory index. Not internally
/// synchronized: the single writer appends; the pager serializes index
/// mutation against concurrent lookups with its own lock.
class Wal {
 public:
  /// Frame layout: 32-byte header + page image.
  static constexpr size_t kFrameHeaderSize = 32;
  static constexpr size_t kFrameSize = kFrameHeaderSize + kPageSize;
  static constexpr uint32_t kFrameMagic = 0x4D4E4E57;  // "WNNM"

  /// Opens (creating if missing) the WAL at `path` and recovers its index:
  /// frames of incomplete or corrupt trailing commits are discarded and the
  /// file is truncated to the last durable commit.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           IoStats* stats);

  /// Appends one committed transaction: every (page, image) pair in
  /// `pages`, the last frame carrying the commit marker for `commit_seq`.
  /// If `sync` is true the file is fdatasync'd before returning. On success
  /// the index reflects the new frames.
  Status AppendCommit(
      const std::vector<std::pair<PageId, const Page*>>& pages,
      uint64_t commit_seq, bool sync);

  /// Newest frame for `page` with commit sequence <= `snapshot_seq`.
  /// Frame numbers returned are 1-based (0 is reserved for "main file").
  std::optional<uint64_t> FindFrame(PageId page, uint64_t snapshot_seq) const;

  /// Reads the page image of 1-based frame `frame_no`.
  Status ReadFrame(uint64_t frame_no, Page* out) const;

  /// Page -> newest frame (1-based) among commits <= `seq`; the checkpoint
  /// working set.
  std::map<PageId, uint64_t> LatestFrames(uint64_t seq) const;

  /// Discards all frames and truncates the file (after checkpoint).
  Status Reset();

  /// fdatasync the WAL file.
  Status Sync();

  uint64_t frame_count() const { return frame_count_; }
  uint64_t last_committed_seq() const { return last_committed_seq_; }

 private:
  Wal(std::unique_ptr<File> file, IoStats* stats)
      : file_(std::move(file)), stats_(stats) {}

  Status Recover();

  std::unique_ptr<File> file_;
  IoStats* stats_;
  uint64_t frame_count_ = 0;           // valid frames in the file
  uint64_t last_committed_seq_ = 0;    // 0 = empty WAL
  // page -> [(commit_seq, frame_no)] in append (= ascending seq) order.
  std::unordered_map<PageId, std::vector<std::pair<uint64_t, uint64_t>>>
      index_;
};

}  // namespace micronn

#endif  // MICRONN_STORAGE_WAL_H_

// Write-ahead log.
//
// Mirrors SQLite's WAL design, which the paper relies on for ACID updates
// and single-writer/multi-reader snapshot isolation (§3.6): committed
// transactions append page images ("frames") to a side log; readers resolve
// a page to the newest frame at-or-before their snapshot; a checkpoint
// copies the newest frames back into the main file. Checkpoints are
// *incremental*: a persistent backfill watermark in the WAL file header
// records how many leading frames have already been folded into the main
// file, so a checkpoint that is cut short by a live reader horizon resumes
// where it left off, and recovery skips re-indexing the folded prefix.
//
// Format v3 adds two things on top of that:
//   - *Pipelined commits*: AppendCommit can stage a commit's serialized
//     frames in memory instead of writing them; the group-commit leader
//     later lands every staged commit with one contiguous FlushStaged
//     write before the shared fdatasync (batched appends, not just
//     batched fsyncs).
//   - *Wrap-around*: once every frame is folded into the main file,
//     WrapRestart begins a new frame generation at slot 1, overwriting
//     the reclaimed prefix instead of growing the file — even while
//     reader snapshots keep the file pinned open. Every frame carries the
//     epoch of its generation; recovery accepts only frames of the live
//     epoch, so stale survivors of the previous generation past the new
//     head are never stitched into history.
// See docs/ARCHITECTURE.md for the full frame lifecycle and
// docs/DURABILITY.md for the crash-ordering rules.
#ifndef MICRONN_STORAGE_WAL_H_
#define MICRONN_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/file.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace micronn {

/// Append-only WAL file plus its in-memory index.
///
/// File layout: a 64-byte header (magic, format version, backfill
/// watermark, epoch) followed by fixed-size frames. Frame numbers are
/// 1-based and positional: frame `f` lives at byte offset `kHeaderSize +
/// (f-1) * kFrameSize` — always, including after a wrap-around restart
/// (a restart begins a new generation at slot 1; it never remaps slots).
///
/// Internally synchronized for the pager's concurrency model: any number
/// of snapshot readers call FindFrame/ReadFrame concurrently with the one
/// writer appending commits. The frame index is guarded by a shared_mutex
/// that the writer holds only for the in-memory publish step — never
/// across the commit append or its fsync — so readers are not stalled by
/// commit I/O. Frame payload reads are positional preads (or staged-buffer
/// copies) under a shared PinFrames lock whose exclusive side is taken
/// only by Reset/WrapRestart, the two operations that recycle frame
/// numbers.
class Wal {
 public:
  /// WAL file header: magic + version + backfill watermark + epoch +
  /// checksum, zero-padded to 64 bytes. Rewritten in place after each
  /// checkpoint step; a stale (lower) watermark on disk is always safe
  /// because re-folding an already-folded frame is idempotent. The *epoch*
  /// field is the exception: a wrap-around restart must make the new epoch
  /// durable (header write + fsync) before any frame of the new generation
  /// lands, so recovery can never validate a stale-generation frame chain
  /// under the new head.
  static constexpr size_t kHeaderSize = 64;
  static constexpr uint32_t kWalMagic = 0x4C41574D;  // "MWAL"
  static constexpr uint32_t kFormatVersion = 3;

  /// Frame layout: 32-byte header + page image.
  static constexpr size_t kFrameHeaderSize = 32;
  static constexpr size_t kFrameSize = kFrameHeaderSize + kPageSize;
  static constexpr uint32_t kFrameMagic = 0x4D4E4E57;  // "WNNM"

  /// How AppendCommit materializes a commit's frames.
  enum class AppendMode {
    kWrite,      // one positional write now, no fsync (the default path)
    kWriteSync,  // write now and fdatasync before returning
    kStaged,     // publish in memory only; FlushStaged() writes them later
  };

  /// Opens (creating if missing) the WAL at `path` and recovers its index:
  /// frames of incomplete or corrupt trailing commits — and stale frames
  /// of an earlier wrap-around generation (epoch mismatch) — are discarded
  /// and the file is truncated to the last durable commit. Frames
  /// at-or-below the persisted backfill watermark are scanned (their
  /// commit chain still validates the log) but not indexed — their content
  /// already lives in the main database file. Format v2 files (pre-epoch)
  /// open seamlessly as epoch 0.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           IoStats* stats);

  /// Same recovery over an already-open handle. The pager uses this to
  /// route the WAL through a selected I/O backend (or a test's
  /// fault-injection wrapper, PagerOptions::file_wrapper).
  static Result<std::unique_ptr<Wal>> Open(std::unique_ptr<FileHandle> file,
                                           IoStats* stats);

  /// Appends one committed transaction: every (page, image) pair in
  /// `pages`, the last frame carrying the commit marker for `commit_seq`.
  /// On success the index reflects the new frames and `*first_frame` (if
  /// non-null) is set to the 1-based number of the commit's first frame —
  /// pages[i] is frame `*first_frame + i`. Single writer (serialized by
  /// the pager).
  ///
  /// kWrite/kWriteSync: the file write (and fsync) happen before the index
  /// publish, so concurrent FindFrame callers only ever see fully written
  /// frames. Frames are placed positionally at the frame-count offset (not
  /// appended at the file size) — mandatory once the log has wrapped,
  /// where stale frames of the previous generation legitimately extend the
  /// file past the write offset and are simply overwritten. On failure the
  /// tail is truncated best-effort so restart recovery does not replay the
  /// failed commit; if that truncate also fails, the orphan is remembered
  /// and re-truncated before the next write lands.
  ///
  /// kStaged (commit pipelining): no file I/O at all — the serialized
  /// frames are parked in the staged buffer and the index is published
  /// immediately (reads of the new frames are served from memory). A later
  /// FlushStaged() — the group-commit leader, a checkpoint, or an explicit
  /// durability barrier — lands every staged commit with one contiguous
  /// write. Never combine kStaged commits with a crash-consistency
  /// expectation short of that flush: until it runs, the frames exist only
  /// in this process.
  Status AppendCommit(
      const std::vector<std::pair<PageId, const Page*>>& pages,
      uint64_t commit_seq, AppendMode mode, uint64_t* first_frame = nullptr);
  /// Back-compat shim: sync=false -> kWrite, sync=true -> kWriteSync.
  Status AppendCommit(
      const std::vector<std::pair<PageId, const Page*>>& pages,
      uint64_t commit_seq, bool sync, uint64_t* first_frame = nullptr) {
    return AppendCommit(pages, commit_seq,
                        sync ? AppendMode::kWriteSync : AppendMode::kWrite,
                        first_frame);
  }

  /// Writes every staged (pipelined) commit to the file as one contiguous
  /// positional write, in commit order. No-op when nothing is staged.
  /// Serialized internally; safe to call from the group-commit leader
  /// concurrently with new commits staging more frames (those simply go
  /// into the next flush). On failure the frames are re-parked (still
  /// readable in memory, retried by the next flush) and the torn file tail
  /// is truncated best-effort — the caller decides what a failed flush
  /// means for commit acknowledgement (the pager applies the same sticky
  /// rule as a failed commit fsync).
  Status FlushStaged();

  /// Newest frame for `page` with commit sequence <= `snapshot_seq`.
  /// Frame numbers returned are 1-based (0 is reserved for "main file").
  /// Thread-safe against the writer's index publish.
  std::optional<uint64_t> FindFrame(PageId page, uint64_t snapshot_seq) const;

  /// Reads the page image of 1-based frame `frame_no` — a positional pread
  /// for flushed frames, a buffer copy for staged ones. On-file frames are
  /// read whole and verified (magic + checksum, the same test recovery
  /// applies) before any byte is copied out; a torn or flipped frame is
  /// Status::Corruption, counted in IoStats::corruptions_detected. A
  /// non-null `expect_page` additionally requires the frame header's page
  /// id to match (guards against misdirected reads). Callers that can
  /// race a wrap-around restart (any registered reader snapshot) must hold
  /// PinFrames() across their resolve (FindFrame) AND this read, so the
  /// resolved frame number cannot be recycled in between; the writer and
  /// the checkpointer (who themselves perform restarts) need no pin.
  Status ReadFrame(uint64_t frame_no, Page* out,
                   const PageId* expect_page = nullptr) const;

  /// One batched frame read of a Pager::ReadPages miss set. ops[i].second
  /// receives the page image of 1-based frame ops[i].first; per-frame
  /// outcomes land in (*per_op)[i] (sized by this call). Every on-file
  /// frame is verified like ReadFrame; `expect_pages` (if non-null, sized
  /// like `ops`) pins each frame to its expected page id. The return value
  /// reports transport-level failure only, so a best-effort prefetch can
  /// keep the frames that did arrive. Same pinning contract as ReadFrame.
  Status ReadFrameBatch(const std::vector<std::pair<uint64_t, Page*>>& ops,
                        std::vector<Status>* per_op,
                        const std::vector<PageId>* expect_pages = nullptr) const;

  /// Shared pin on the frame address space: while held, no frame number
  /// can be recycled (Reset and WrapRestart take the exclusive side).
  /// Readers hold it across resolve->read->cache-insert so a wrap-around
  /// under live readers can never tear a page read or let a stale frame
  /// image be cached under a recycled frame number. Cheap: uncontended
  /// shared acquisition, exclusive taken once per WAL generation.
  std::shared_lock<std::shared_mutex> PinFrames() const {
    return std::shared_lock<std::shared_mutex>(frames_mutex_);
  }

  /// Page -> newest frame (1-based) among commits <= `seq`; the checkpoint
  /// working set. Entries whose frame number is at-or-below the backfill
  /// watermark are already folded into the main file.
  std::map<PageId, uint64_t> LatestFrames(uint64_t seq) const;

  /// Number of frames that belong to commits with sequence <= `seq` — the
  /// backfill target for a checkpoint whose reader horizon is `seq`.
  /// Commits occupy contiguous frame ranges in sequence order, so this is
  /// always a frame-count prefix of the log.
  uint64_t FramesThrough(uint64_t seq) const;

  /// Records that the leading `frames` frames (covering commits through
  /// `seq`) have been folded into the main file, and persists the new
  /// watermark in the WAL header. The caller must have fsynced both the
  /// WAL (so the folded frames cannot be torn behind the watermark) and
  /// the main file (so the folded images are durable) first; staged frames
  /// must have been flushed (the watermark describes on-file frames). The
  /// header rewrite is deliberately *not* fsynced: losing it only lowers
  /// the on-disk watermark, and re-folding is idempotent. Monotonic; a
  /// value below the current watermark is an error.
  Status AdvanceBackfillWatermark(uint64_t frames, uint64_t seq);

  /// Discards all frames, truncates the file to the header, and resets the
  /// backfill watermark to zero. The watermark reset is fsynced before
  /// returning: unlike an advance, a *stale-high* watermark over a fresh
  /// frame generation would make recovery skip frames that were never
  /// folded. Only called once every frame is backfilled and no reader is
  /// registered (when readers persist, WrapRestart is the reclaim path).
  Status Reset();

  /// Begins a new frame generation at slot 1 *without* truncating the
  /// file: the wrap-around reclaim for the case where every frame is
  /// folded but live reader snapshots still pin the log. Ordering: the
  /// incremented epoch (with a zero watermark) is made durable in the
  /// header first — while the old frames are still intact — then, under
  /// the exclusive frame pin (quiescing in-flight reads), the index is
  /// cleared and the frame cursor returns to slot 1; `on_restart` (may be
  /// null) runs inside that exclusive section so the caller can invalidate
  /// frame-keyed caches before any reader can resolve against the new
  /// generation. Old-generation frames beyond the new head become *stale
  /// survivors*: recovery cuts the frame scan at the first epoch mismatch,
  /// and new commits simply overwrite them slot by slot. Requires a fully
  /// folded log with nothing staged; the single writer must be excluded by
  /// the caller. On failure (header write/fsync) the old generation is
  /// fully intact and remains live.
  Status WrapRestart(const std::function<void()>& on_restart = nullptr);

  /// fdatasync the WAL file (counted in IoStats::wal_syncs).
  Status Sync();

  uint64_t frame_count() const {
    return frame_count_.load(std::memory_order_acquire);
  }
  uint64_t last_committed_seq() const {
    return last_committed_seq_.load(std::memory_order_acquire);
  }
  /// Frames already folded into the main file (prefix of the log).
  uint64_t backfill_watermark() const {
    return backfill_watermark_.load(std::memory_order_acquire);
  }
  /// Commit sequence the backfill watermark corresponds to.
  uint64_t backfill_seq() const {
    return backfill_seq_.load(std::memory_order_acquire);
  }
  /// Wrap-around generation: 0 at creation, +1 per WrapRestart.
  uint32_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  /// Frames materialized in the file (<= frame_count(); the gap is the
  /// staged, not-yet-flushed pipelined commits).
  uint64_t flushed_frames() const {
    return flushed_frames_.load(std::memory_order_acquire);
  }

 private:
  Wal(std::unique_ptr<FileHandle> file, IoStats* stats)
      : file_(std::move(file)), stats_(stats) {}

  Status Recover();
  // Serializes the current watermark + epoch into the on-disk header.
  Status WriteHeader();
  // Serves `frame_no` from the staged/flushing buffers if it is still
  // memory-resident; returns false if it is already on file.
  bool ReadStagedFrame(uint64_t frame_no, Page* out) const;
  // Publishes a commit's frames to the index and the counters (the step
  // shared by immediate and staged appends).
  void PublishCommit(
      const std::vector<std::pair<PageId, const Page*>>& pages,
      uint64_t commit_seq, uint64_t base);

  std::unique_ptr<FileHandle> file_;
  IoStats* stats_;
  std::atomic<uint64_t> frame_count_{0};         // published frames
  std::atomic<uint64_t> last_committed_seq_{0};  // 0 = empty WAL
  std::atomic<uint64_t> backfill_watermark_{0};  // frames folded into main
  std::atomic<uint64_t> backfill_seq_{0};        // seq folded through
  std::atomic<uint32_t> epoch_{0};               // wrap-around generation
  // Frames whose bytes are in the file (never > frame_count_). Advanced by
  // immediate appends and successful flushes; reset by Reset/WrapRestart.
  std::atomic<uint64_t> flushed_frames_{0};
  // A failed write's rollback truncate also failed: unknown bytes sit past
  // flushed_frames_ and must be truncated away before the next write lands
  // (a *smaller* later commit would otherwise leave orphan frames beyond
  // its own for recovery to mis-stitch). Replaces the old file-size
  // heuristic, which wrap-around broke: past a restart, a file larger than
  // the write offset is the normal state, not evidence of an orphan.
  std::atomic<bool> dirty_tail_{false};
  // Guards index_ and commit_bounds_. Readers (FindFrame/LatestFrames/
  // FramesThrough) take it shared; the writer takes it exclusive only for
  // the brief in-memory publish at the end of AppendCommit and during
  // Reset/WrapRestart. Lock order: frames_mutex_ before index_mutex_.
  mutable std::shared_mutex index_mutex_;
  // page -> [(commit_seq, frame_no)] in append (= ascending seq) order.
  std::unordered_map<PageId, std::vector<std::pair<uint64_t, uint64_t>>>
      index_;
  // (commit_seq, last frame of that commit) in append order; binary-searched
  // by FramesThrough to turn a reader-horizon sequence into a frame prefix.
  std::vector<std::pair<uint64_t, uint64_t>> commit_bounds_;
  // Frame address space pin (see PinFrames). Exclusive holders:
  // Reset/WrapRestart only.
  mutable std::shared_mutex frames_mutex_;
  // Pipelined-commit staging. staged_mutex_ guards the two buffers and
  // their base frame numbers; flush_io_mutex_ serializes FlushStaged
  // bodies so exactly one flush write is in flight, with the buffer moved
  // to flushing_buf_ (still readable) for the unlocked write's duration.
  mutable std::mutex staged_mutex_;
  std::string staged_buf_;        // frames (staged_first_-1, frame_count_]
  uint64_t staged_first_ = 0;     // frame number of staged_buf_'s first frame
  std::string flushing_buf_;      // frames being written by FlushStaged
  uint64_t flush_base_ = 0;       // flushing_buf_ holds frames flush_base_+1..
  std::mutex flush_io_mutex_;
};

}  // namespace micronn

#endif  // MICRONN_STORAGE_WAL_H_

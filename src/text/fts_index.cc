#include "text/fts_index.h"

#include <algorithm>

#include "common/bytes.h"
#include "storage/key_encoding.h"
#include "text/tokenizer.h"

namespace micronn {

namespace {

std::string PostingKey(std::string_view token, uint64_t doc_id) {
  std::string k;
  key::AppendString(&k, token);
  key::AppendU64(&k, doc_id);
  return k;
}

}  // namespace

std::string FtsPostingsTableName(std::string_view column) {
  return "fts:" + std::string(column);
}

std::string FtsFreqsTableName(std::string_view column) {
  return "fts_df:" + std::string(column);
}

Status FtsIndex::AddDocument(uint64_t doc_id, std::string_view text) {
  for (const std::string& token : TokenSet(text)) {
    const std::string pk = PostingKey(token, doc_id);
    MICRONN_ASSIGN_OR_RETURN(std::optional<std::string> existing,
                             postings_.Get(pk));
    if (existing.has_value()) continue;  // already indexed
    MICRONN_RETURN_IF_ERROR(postings_.Put(pk, ""));
    const std::string fk = key::Str(token);
    MICRONN_ASSIGN_OR_RETURN(std::optional<std::string> df, freqs_.Get(fk));
    uint64_t count = df.has_value() ? DecodeFixed64(df->data()) : 0;
    std::string v;
    PutFixed64(&v, count + 1);
    MICRONN_RETURN_IF_ERROR(freqs_.Put(fk, v));
  }
  return Status::OK();
}

Status FtsIndex::RemoveDocument(uint64_t doc_id, std::string_view text) {
  for (const std::string& token : TokenSet(text)) {
    MICRONN_ASSIGN_OR_RETURN(bool removed,
                             postings_.Delete(PostingKey(token, doc_id)));
    if (!removed) continue;
    const std::string fk = key::Str(token);
    MICRONN_ASSIGN_OR_RETURN(std::optional<std::string> df, freqs_.Get(fk));
    const uint64_t count = df.has_value() ? DecodeFixed64(df->data()) : 0;
    if (count <= 1) {
      MICRONN_ASSIGN_OR_RETURN(bool erased, freqs_.Delete(fk));
      (void)erased;
    } else {
      std::string v;
      PutFixed64(&v, count - 1);
      MICRONN_RETURN_IF_ERROR(freqs_.Put(fk, v));
    }
  }
  return Status::OK();
}

Result<uint64_t> FtsIndex::DocumentFrequency(std::string_view token) {
  MICRONN_ASSIGN_OR_RETURN(std::optional<std::string> df,
                           freqs_.Get(key::Str(token)));
  return df.has_value() ? DecodeFixed64(df->data()) : 0;
}

Result<std::vector<uint64_t>> FtsIndex::PostingsOf(std::string_view token) {
  std::vector<uint64_t> out;
  const std::string prefix = key::Str(token);
  BTreeCursor c = postings_.NewCursor();
  MICRONN_RETURN_IF_ERROR(c.Seek(prefix));
  while (c.Valid() && c.key().size() == prefix.size() + 8 &&
         c.key().substr(0, prefix.size()) == prefix) {
    std::string_view rest = c.key().substr(prefix.size());
    uint64_t doc_id;
    if (!key::ConsumeU64(&rest, &doc_id)) {
      return Status::Corruption("bad posting key");
    }
    out.push_back(doc_id);
    MICRONN_RETURN_IF_ERROR(c.Next());
  }
  return out;
}

Result<bool> FtsIndex::Contains(uint64_t doc_id, std::string_view token) {
  MICRONN_ASSIGN_OR_RETURN(std::optional<std::string> hit,
                           postings_.Get(PostingKey(token, doc_id)));
  return hit.has_value();
}

Result<std::vector<uint64_t>> FtsIndex::MatchConjunction(
    const std::vector<std::string>& tokens) {
  if (tokens.empty()) {
    return Status::InvalidArgument("MATCH requires at least one token");
  }
  // Rarest token first: its postings bound the result size; the remaining
  // tokens are point probes.
  std::vector<std::pair<uint64_t, std::string>> by_df;
  by_df.reserve(tokens.size());
  for (const std::string& t : tokens) {
    MICRONN_ASSIGN_OR_RETURN(uint64_t df, DocumentFrequency(t));
    if (df == 0) return std::vector<uint64_t>{};
    by_df.emplace_back(df, t);
  }
  std::sort(by_df.begin(), by_df.end());
  MICRONN_ASSIGN_OR_RETURN(std::vector<uint64_t> candidates,
                           PostingsOf(by_df[0].second));
  std::vector<uint64_t> out;
  out.reserve(candidates.size());
  for (const uint64_t doc : candidates) {
    bool all = true;
    for (size_t i = 1; i < by_df.size() && all; ++i) {
      MICRONN_ASSIGN_OR_RETURN(bool has, Contains(doc, by_df[i].second));
      all = has;
    }
    if (all) out.push_back(doc);
  }
  return out;
}

}  // namespace micronn

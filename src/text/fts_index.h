// Inverted text index over a string attribute column.
//
// Stand-in for SQLite FTS5 as used in the paper's hybrid-search evaluation
// (§4.3.1): tags are tokenized; each (token, document) pair is a postings
// row; a side table keeps per-token document frequencies, which drive the
// optimizer's string selectivity estimate.
//
// Storage layout (both are ordinary engine tables):
//   postings:  key = Str(token) + U64(doc_id)   -> ""
//   freqs:     key = Str(token)                 -> fixed64 document count
#ifndef MICRONN_TEXT_FTS_INDEX_H_
#define MICRONN_TEXT_FTS_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/btree.h"

namespace micronn {

/// Names of the backing tables for the FTS index of `column`.
std::string FtsPostingsTableName(std::string_view column);
std::string FtsFreqsTableName(std::string_view column);

/// A handle over the two FTS tables, bound to one transaction. Writable
/// operations require a write transaction's trees.
class FtsIndex {
 public:
  FtsIndex(BTree postings, BTree freqs)
      : postings_(postings), freqs_(freqs) {}

  /// Indexes `text` for `doc_id` (tokenized, deduplicated).
  Status AddDocument(uint64_t doc_id, std::string_view text);

  /// Removes `doc_id`'s postings. `text` must be the originally indexed
  /// text (the caller stores attribute values and can supply it).
  Status RemoveDocument(uint64_t doc_id, std::string_view text);

  /// Document frequency of one token (0 if unseen).
  Result<uint64_t> DocumentFrequency(std::string_view token);

  /// Sorted ids of documents containing `token`.
  Result<std::vector<uint64_t>> PostingsOf(std::string_view token);

  /// Sorted ids of documents containing *all* of `tokens` (the MATCH
  /// conjunction of §4.3.1). Evaluated rarest-token-first with membership
  /// probes, so cost scales with the smallest postings list.
  Result<std::vector<uint64_t>> MatchConjunction(
      const std::vector<std::string>& tokens);

  /// True if `doc_id` contains `token`.
  Result<bool> Contains(uint64_t doc_id, std::string_view token);

 private:
  BTree postings_;
  BTree freqs_;
};

}  // namespace micronn

#endif  // MICRONN_TEXT_FTS_INDEX_H_

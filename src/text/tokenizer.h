// Tokenizer for the full-text attribute index (paper §3.5: tags are stored
// as a whitespace-separated string with an inverted index where "each tag
// is represented as a token").
#ifndef MICRONN_TEXT_TOKENIZER_H_
#define MICRONN_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace micronn {

/// Maximum token length kept by the tokenizer; longer tokens are truncated
/// (keeps index keys bounded).
inline constexpr size_t kMaxTokenLength = 64;

/// Splits `text` into lowercase tokens on any non-alphanumeric byte.
/// Duplicates are preserved (callers dedupe if needed).
std::vector<std::string> Tokenize(std::string_view text);

/// Tokenize + sort + dedupe: the canonical token set of a document.
std::vector<std::string> TokenSet(std::string_view text);

}  // namespace micronn

#endif  // MICRONN_TEXT_TOKENIZER_H_

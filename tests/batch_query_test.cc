// Batch (MQO) engine tests: equivalence with sequential execution across
// randomized heterogeneous + filtered workloads, delta-store coverage,
// per-query counter accounting, and scan sharing.
#include <gtest/gtest.h>

#include <filesystem>
#include <random>

#include "core/db.h"
#include "datagen/dataset.h"
#include "query/batch.h"

namespace micronn {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDim = 24;
  static constexpr size_t kN = 5000;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_batch_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    ds_ = GenerateDataset({"b", kDim, Metric::kL2, kN, 128, 32, 0.2f, 66});
    DbOptions options;
    options.dim = kDim;
    options.target_cluster_size = 50;
    db_ = DB::Open(dir_ / "db.mnn", options).value();
    std::vector<UpsertRequest> batch;
    for (size_t i = 0; i < kN; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.assign(ds_.row(i), ds_.row(i) + kDim);
      // Attributes for filtered-batch tests: "bucket" qualifies 10% of
      // rows, "city" == rare qualifies 0.4% (drives the optimizer to
      // pre-filtering).
      req.attributes["bucket"] =
          AttributeValue::Int(static_cast<int64_t>(i % 10));
      req.attributes["city"] =
          AttributeValue::String(i % 250 == 0 ? "rare" : "common");
      batch.push_back(std::move(req));
    }
    EXPECT_TRUE(db_->Upsert(batch).ok());
    EXPECT_TRUE(db_->BuildIndex().ok());
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  // Asserts that the batched response `got` is identical to what
  // per-query Search returns for `req`: items (ids AND distances), plan,
  // optimizer estimates, and every per-query counter.
  void ExpectMatchesSingle(const SearchRequest& req,
                           const SearchResponse& got, size_t q) {
    const SearchResponse single = db_->Search(req).value();
    ASSERT_EQ(got.items.size(), single.items.size()) << "q=" << q;
    for (size_t i = 0; i < single.items.size(); ++i) {
      EXPECT_EQ(got.items[i].vid, single.items[i].vid)
          << "q=" << q << " i=" << i;
      EXPECT_EQ(got.items[i].distance, single.items[i].distance)
          << "q=" << q << " i=" << i;
    }
    EXPECT_EQ(got.plan, single.plan) << "q=" << q;
    EXPECT_EQ(got.decision.plan, single.decision.plan) << "q=" << q;
    EXPECT_EQ(got.decision.filter_selectivity,
              single.decision.filter_selectivity)
        << "q=" << q;
    EXPECT_EQ(got.decision.ivf_selectivity, single.decision.ivf_selectivity)
        << "q=" << q;
    EXPECT_EQ(got.partitions_scanned, single.partitions_scanned) << "q=" << q;
    EXPECT_EQ(got.rows_scanned, single.rows_scanned) << "q=" << q;
    EXPECT_EQ(got.rows_filtered, single.rows_filtered) << "q=" << q;
    EXPECT_EQ(got.explain.probe_pairs, single.explain.probe_pairs)
        << "q=" << q;
    EXPECT_EQ(got.explain.candidates, single.explain.candidates)
        << "q=" << q;
  }

  std::filesystem::path dir_;
  Dataset ds_;
  std::unique_ptr<DB> db_;
};

// Equivalence sweep over batch size and nprobe.
struct BatchParam {
  size_t batch;
  uint32_t nprobe;
};

class BatchEquivalenceTest
    : public BatchTest,
      public ::testing::WithParamInterface<BatchParam> {};

// gtest needs the fixture to expose the param interface; re-declare via
// inheritance trick: BatchTest + WithParamInterface.
TEST_P(BatchEquivalenceTest, MatchesSequential) {
  const BatchParam param = GetParam();
  std::vector<SearchRequest> requests(param.batch);
  for (size_t q = 0; q < param.batch; ++q) {
    const size_t qi = q % ds_.spec.n_queries;
    requests[q].query.assign(ds_.query(qi), ds_.query(qi) + kDim);
    requests[q].k = 10;
    requests[q].nprobe = param.nprobe;
  }
  auto batched = db_->BatchSearch(requests).value();
  ASSERT_EQ(batched.size(), param.batch);
  for (size_t q = 0; q < param.batch; ++q) {
    auto single = db_->Search(requests[q]).value();
    ASSERT_EQ(batched[q].items.size(), single.items.size()) << q;
    for (size_t i = 0; i < single.items.size(); ++i) {
      EXPECT_EQ(batched[q].items[i].vid, single.items[i].vid)
          << "batch=" << param.batch << " q=" << q << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchEquivalenceTest,
    ::testing::Values(BatchParam{1, 4}, BatchParam{7, 4}, BatchParam{32, 4},
                      BatchParam{64, 1}, BatchParam{64, 16},
                      BatchParam{128, 8}, BatchParam{256, 2}));

TEST_F(BatchTest, BatchSeesDeltaStore) {
  // Freshly upserted vectors (delta store) must appear in batch results.
  UpsertRequest fresh;
  fresh.asset_id = "fresh";
  fresh.vector.assign(ds_.query(0), ds_.query(0) + kDim);
  ASSERT_TRUE(db_->Upsert({fresh}).ok());
  std::vector<SearchRequest> requests(8);
  for (size_t q = 0; q < 8; ++q) {
    requests[q].query.assign(ds_.query(0), ds_.query(0) + kDim);
    requests[q].k = 3;
    requests[q].nprobe = 4;
  }
  auto responses = db_->BatchSearch(requests).value();
  for (const auto& resp : responses) {
    ASSERT_FALSE(resp.items.empty());
    EXPECT_EQ(resp.items[0].asset_id, "fresh");
    EXPECT_FLOAT_EQ(resp.items[0].distance, 0.f);
  }
}

TEST_F(BatchTest, HeterogeneousBatchSharesScansAndMatchesSequential) {
  // Mixed k and an exact query: no fallback — every partition-scanning
  // plan joins the shared scan, and results still match per-query Search.
  std::vector<SearchRequest> requests(3);
  requests[0].query.assign(ds_.query(0), ds_.query(0) + kDim);
  requests[0].k = 5;
  requests[1].query.assign(ds_.query(1), ds_.query(1) + kDim);
  requests[1].k = 9;  // different k used to force a sequential fallback
  requests[2].query.assign(ds_.query(2), ds_.query(2) + kDim);
  requests[2].k = 5;
  requests[2].exact = true;
  auto batched = db_->BatchSearch(requests).value();
  ASSERT_EQ(batched.size(), 3u);
  uint64_t sum_partitions = 0;
  for (size_t q = 0; q < 3; ++q) {
    ExpectMatchesSingle(requests[q], batched[q], q);
    EXPECT_TRUE(batched[q].explain.shared_scan) << q;
    sum_partitions += batched[q].partitions_scanned;
  }
  EXPECT_EQ(batched[2].plan, QueryPlan::kExact);
  // The exact plan already visits every partition, so sharing must put
  // the group's unique-partition count strictly below the per-query sum.
  EXPECT_LT(batched[0].explain.group_partitions_scanned, sum_partitions);
}

TEST_F(BatchTest, EmptyBatch) {
  auto responses = db_->BatchSearch({}).value();
  EXPECT_TRUE(responses.empty());
}

TEST_F(BatchTest, SharedScanTouchesEachPartitionOnce) {
  std::vector<SearchRequest> requests(200);
  for (size_t q = 0; q < requests.size(); ++q) {
    const size_t qi = q % ds_.spec.n_queries;
    requests[q].query.assign(ds_.query(qi), ds_.query(qi) + kDim);
    requests[q].k = 10;
    requests[q].nprobe = 8;
  }
  auto responses = db_->BatchSearch(requests).value();
  const auto stats = db_->GetIndexStats().value();
  // Each response reports its own share: 8 probes + delta.
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.partitions_scanned, 9u);
    EXPECT_EQ(resp.explain.probe_pairs, 8u);
    EXPECT_TRUE(resp.explain.shared_scan);
    EXPECT_EQ(resp.explain.group_size, 200u);
  }
  // MQO: unique partitions <= all partitions + delta, not 200 x 9.
  EXPECT_LE(responses[0].explain.group_partitions_scanned,
            static_cast<uint64_t>(stats.n_partitions) + 1);
  EXPECT_LT(responses[0].explain.group_partitions_scanned, 200ull * 9ull);
  EXPECT_EQ(responses[0].explain.group_probe_pairs, 200ull * 8ull);
  // And the group's decoded-row total is shared: strictly below the sum
  // of what 200 independent probes of 9 partitions would touch.
  EXPECT_LT(responses[0].explain.group_rows_scanned, 200ull * 9ull * 50ull);
}

TEST_F(BatchTest, FilteredHomogeneousBatchSharesScans) {
  // A filtered batch must run through the shared-scan executor (the old
  // engine silently degraded it to sequential per-query execution).
  std::vector<SearchRequest> requests(16);
  for (size_t q = 0; q < requests.size(); ++q) {
    requests[q].query.assign(ds_.query(q), ds_.query(q) + kDim);
    requests[q].k = 10;
    requests[q].nprobe = 8;
    requests[q].filter = Predicate::Compare(
        "bucket", CompareOp::kEq, AttributeValue::Int(3));
    requests[q].plan = PlanOverride::kForcePostFilter;
  }
  auto batched = db_->BatchSearch(requests).value();
  ASSERT_EQ(batched.size(), 16u);
  uint64_t sum_partitions = 0;
  for (size_t q = 0; q < batched.size(); ++q) {
    ExpectMatchesSingle(requests[q], batched[q], q);
    EXPECT_EQ(batched[q].plan, QueryPlan::kPostFilter);
    EXPECT_TRUE(batched[q].explain.shared_scan) << q;
    EXPECT_GT(batched[q].rows_filtered, 0u) << q;
    sum_partitions += batched[q].partitions_scanned;
  }
  // Scan sharing: the batch's unique partitions < sum of per-query counts
  // (16 queries x 9 partitions each, but at most n_partitions + 1 unique).
  EXPECT_LT(batched[0].explain.group_partitions_scanned, sum_partitions);
}

TEST_F(BatchTest, MixedNprobeBatchSharesScans) {
  // Heterogeneous (k, nprobe) pairs execute in one shared-scan group.
  const uint32_t nprobes[] = {2, 4, 8, 16};
  const uint32_t ks[] = {3, 10, 7, 25};
  std::vector<SearchRequest> requests(32);
  for (size_t q = 0; q < requests.size(); ++q) {
    requests[q].query.assign(ds_.query(q), ds_.query(q) + kDim);
    requests[q].k = ks[q % 4];
    requests[q].nprobe = nprobes[q % 4];
  }
  auto batched = db_->BatchSearch(requests).value();
  ASSERT_EQ(batched.size(), requests.size());
  uint64_t sum_partitions = 0;
  for (size_t q = 0; q < batched.size(); ++q) {
    ExpectMatchesSingle(requests[q], batched[q], q);
    // Per-query counters, not the batch totals of the old engine.
    EXPECT_EQ(batched[q].partitions_scanned, nprobes[q % 4] + 1ull) << q;
    EXPECT_EQ(batched[q].explain.probe_pairs, nprobes[q % 4]) << q;
    sum_partitions += batched[q].partitions_scanned;
  }
  EXPECT_LT(batched[0].explain.group_partitions_scanned, sum_partitions);
}

TEST_F(BatchTest, PreFilterPlanInsideBatch) {
  // One request's optimizer decision lands on pre-filtering (city ==
  // "rare" qualifies 0.4% of rows) while the rest of the batch keeps
  // scanning partitions; results still match per-query execution.
  std::vector<SearchRequest> requests(8);
  for (size_t q = 0; q < requests.size(); ++q) {
    requests[q].query.assign(ds_.query(q), ds_.query(q) + kDim);
    requests[q].k = 10;
    requests[q].nprobe = 8;
  }
  requests[5].filter = Predicate::Compare("city", CompareOp::kEq,
                                          AttributeValue::String("rare"));
  auto batched = db_->BatchSearch(requests).value();
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t q = 0; q < batched.size(); ++q) {
    ExpectMatchesSingle(requests[q], batched[q], q);
  }
  EXPECT_EQ(batched[5].plan, QueryPlan::kPreFilter);
  EXPECT_EQ(batched[5].explain.candidates, kN / 250);
  EXPECT_LT(batched[5].decision.filter_selectivity,
            batched[5].decision.ivf_selectivity);
  // The pre-filter plan scores its candidate set; it joins no scans.
  EXPECT_EQ(batched[5].partitions_scanned, 0u);
  EXPECT_EQ(batched[5].rows_scanned, kN / 250);
  // The other seven still shared their partition scans.
  EXPECT_TRUE(batched[0].explain.shared_scan);
  EXPECT_LT(batched[0].explain.group_partitions_scanned, 7ull * 9ull);
}

TEST_F(BatchTest, RandomizedHeterogeneousFilteredParity) {
  // Fuzz the whole plan space inside one batch: random k/nprobe, random
  // filters (none / 10% bucket / 0.4% city), plan overrides, and exact
  // queries. Every response must be bit-identical (ids, distances, plan
  // decision, counters) to per-query Search.
  std::mt19937 rng(20250726);
  std::vector<SearchRequest> requests(40);
  for (size_t q = 0; q < requests.size(); ++q) {
    SearchRequest& req = requests[q];
    const size_t qi = rng() % ds_.spec.n_queries;
    req.query.assign(ds_.query(qi), ds_.query(qi) + kDim);
    req.k = 1 + rng() % 20;
    const uint32_t nprobe_choices[] = {0, 1, 2, 4, 8, 16};
    req.nprobe = nprobe_choices[rng() % 6];
    switch (rng() % 4) {
      case 0:
        break;  // unfiltered
      case 1:
        req.filter = Predicate::Compare(
            "bucket", CompareOp::kEq,
            AttributeValue::Int(static_cast<int64_t>(rng() % 10)));
        break;
      case 2:
        req.filter = Predicate::Compare("city", CompareOp::kEq,
                                        AttributeValue::String("rare"));
        break;
      case 3:
        req.filter = Predicate::And(
            {Predicate::Compare("bucket", CompareOp::kGe,
                                AttributeValue::Int(2)),
             Predicate::Compare("bucket", CompareOp::kLt,
                                AttributeValue::Int(6))});
        break;
    }
    if (req.filter.has_value()) {
      const PlanOverride overrides[] = {PlanOverride::kAuto,
                                        PlanOverride::kForcePreFilter,
                                        PlanOverride::kForcePostFilter};
      req.plan = overrides[rng() % 3];
    }
    if (rng() % 10 == 0) req.exact = true;
  }
  auto batched = db_->BatchSearch(requests).value();
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t q = 0; q < batched.size(); ++q) {
    ExpectMatchesSingle(requests[q], batched[q], q);
  }
}

TEST_F(BatchTest, LargeBatchWithMoreQueriesThanVectors) {
  std::vector<SearchRequest> requests(600);
  for (size_t q = 0; q < requests.size(); ++q) {
    const size_t qi = q % ds_.spec.n_queries;
    requests[q].query.assign(ds_.query(qi), ds_.query(qi) + kDim);
    requests[q].k = 100;
    requests[q].nprobe = 4;
  }
  auto responses = db_->BatchSearch(requests).value();
  ASSERT_EQ(responses.size(), 600u);
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.items.size(), 100u);
    // Results must be sorted ascending by distance.
    for (size_t i = 1; i < resp.items.size(); ++i) {
      EXPECT_LE(resp.items[i - 1].distance, resp.items[i].distance);
    }
  }
}

}  // namespace
}  // namespace micronn

// Batch (MQO) engine tests: equivalence with sequential execution across
// randomized workloads, delta-store coverage, heterogeneous-batch
// fallback, and scan-sharing accounting.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/db.h"
#include "datagen/dataset.h"
#include "query/batch.h"

namespace micronn {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDim = 24;
  static constexpr size_t kN = 5000;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_batch_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    ds_ = GenerateDataset({"b", kDim, Metric::kL2, kN, 128, 32, 0.2f, 66});
    DbOptions options;
    options.dim = kDim;
    options.target_cluster_size = 50;
    db_ = DB::Open(dir_ / "db.mnn", options).value();
    std::vector<UpsertRequest> batch;
    for (size_t i = 0; i < kN; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.assign(ds_.row(i), ds_.row(i) + kDim);
      batch.push_back(std::move(req));
    }
    EXPECT_TRUE(db_->Upsert(batch).ok());
    EXPECT_TRUE(db_->BuildIndex().ok());
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  Dataset ds_;
  std::unique_ptr<DB> db_;
};

// Equivalence sweep over batch size and nprobe.
struct BatchParam {
  size_t batch;
  uint32_t nprobe;
};

class BatchEquivalenceTest
    : public BatchTest,
      public ::testing::WithParamInterface<BatchParam> {};

// gtest needs the fixture to expose the param interface; re-declare via
// inheritance trick: BatchTest + WithParamInterface.
TEST_P(BatchEquivalenceTest, MatchesSequential) {
  const BatchParam param = GetParam();
  std::vector<SearchRequest> requests(param.batch);
  for (size_t q = 0; q < param.batch; ++q) {
    const size_t qi = q % ds_.spec.n_queries;
    requests[q].query.assign(ds_.query(qi), ds_.query(qi) + kDim);
    requests[q].k = 10;
    requests[q].nprobe = param.nprobe;
  }
  auto batched = db_->BatchSearch(requests).value();
  ASSERT_EQ(batched.size(), param.batch);
  for (size_t q = 0; q < param.batch; ++q) {
    auto single = db_->Search(requests[q]).value();
    ASSERT_EQ(batched[q].items.size(), single.items.size()) << q;
    for (size_t i = 0; i < single.items.size(); ++i) {
      EXPECT_EQ(batched[q].items[i].vid, single.items[i].vid)
          << "batch=" << param.batch << " q=" << q << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchEquivalenceTest,
    ::testing::Values(BatchParam{1, 4}, BatchParam{7, 4}, BatchParam{32, 4},
                      BatchParam{64, 1}, BatchParam{64, 16},
                      BatchParam{128, 8}, BatchParam{256, 2}));

TEST_F(BatchTest, BatchSeesDeltaStore) {
  // Freshly upserted vectors (delta store) must appear in batch results.
  UpsertRequest fresh;
  fresh.asset_id = "fresh";
  fresh.vector.assign(ds_.query(0), ds_.query(0) + kDim);
  ASSERT_TRUE(db_->Upsert({fresh}).ok());
  std::vector<SearchRequest> requests(8);
  for (size_t q = 0; q < 8; ++q) {
    requests[q].query.assign(ds_.query(0), ds_.query(0) + kDim);
    requests[q].k = 3;
    requests[q].nprobe = 4;
  }
  auto responses = db_->BatchSearch(requests).value();
  for (const auto& resp : responses) {
    ASSERT_FALSE(resp.items.empty());
    EXPECT_EQ(resp.items[0].asset_id, "fresh");
    EXPECT_FLOAT_EQ(resp.items[0].distance, 0.f);
  }
}

TEST_F(BatchTest, HeterogeneousBatchFallsBackCorrectly) {
  // Mixed k / filters: results must still match per-query Search.
  std::vector<SearchRequest> requests(3);
  requests[0].query.assign(ds_.query(0), ds_.query(0) + kDim);
  requests[0].k = 5;
  requests[1].query.assign(ds_.query(1), ds_.query(1) + kDim);
  requests[1].k = 9;  // different k forces the fallback path
  requests[2].query.assign(ds_.query(2), ds_.query(2) + kDim);
  requests[2].k = 5;
  requests[2].exact = true;
  auto batched = db_->BatchSearch(requests).value();
  ASSERT_EQ(batched.size(), 3u);
  for (size_t q = 0; q < 3; ++q) {
    auto single = db_->Search(requests[q]).value();
    ASSERT_EQ(batched[q].items.size(), single.items.size());
    for (size_t i = 0; i < single.items.size(); ++i) {
      EXPECT_EQ(batched[q].items[i].vid, single.items[i].vid);
    }
  }
}

TEST_F(BatchTest, EmptyBatch) {
  auto responses = db_->BatchSearch({}).value();
  EXPECT_TRUE(responses.empty());
}

TEST_F(BatchTest, SharedScanTouchesEachPartitionOnce) {
  std::vector<SearchRequest> requests(200);
  for (size_t q = 0; q < requests.size(); ++q) {
    const size_t qi = q % ds_.spec.n_queries;
    requests[q].query.assign(ds_.query(qi), ds_.query(qi) + kDim);
    requests[q].k = 10;
    requests[q].nprobe = 8;
  }
  auto responses = db_->BatchSearch(requests).value();
  const auto stats = db_->GetIndexStats().value();
  // MQO: unique partitions <= all partitions + delta, not 200 x 9.
  EXPECT_LE(responses[0].partitions_scanned,
            static_cast<uint64_t>(stats.n_partitions) + 1);
  // And the scanned-row total is shared: strictly below the sum of what
  // 200 independent probes of 9 partitions would touch.
  EXPECT_LT(responses[0].rows_scanned,
            200ull * 9ull * 50ull);
}

TEST_F(BatchTest, LargeBatchWithMoreQueriesThanVectors) {
  std::vector<SearchRequest> requests(600);
  for (size_t q = 0; q < requests.size(); ++q) {
    const size_t qi = q % ds_.spec.n_queries;
    requests[q].query.assign(ds_.query(qi), ds_.query(qi) + kDim);
    requests[q].k = 100;
    requests[q].nprobe = 4;
  }
  auto responses = db_->BatchSearch(requests).value();
  ASSERT_EQ(responses.size(), 600u);
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.items.size(), 100u);
    // Results must be sorted ascending by distance.
    for (size_t i = 1; i < resp.items.size(); ++i) {
      EXPECT_LE(resp.items[i - 1].distance, resp.items[i].distance);
    }
  }
}

}  // namespace
}  // namespace micronn

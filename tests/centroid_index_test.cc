// Tests for the two-level centroid index (§3.2 extension).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "core/db.h"
#include "datagen/dataset.h"
#include "ivf/centroid_index.h"
#include "ivf/search.h"

namespace micronn {
namespace {

Centroids MakeCentroids(size_t k, uint32_t dim, uint64_t seed) {
  Dataset ds = GenerateDataset({"c", dim, Metric::kL2, k, 1,
                                std::max<size_t>(4, k / 16), 0.2f, seed});
  Centroids c;
  c.k = static_cast<uint32_t>(k);
  c.dim = dim;
  c.metric = Metric::kL2;
  c.data = ds.data;
  return c;
}

TEST(CentroidIndexTest, EveryCentroidIsMemberOfExactlyOneBranch) {
  const Centroids c = MakeCentroids(500, 16, 1);
  auto index = CentroidIndex::Build(c, 0, 7).value();
  std::set<uint32_t> seen;
  for (uint32_t b = 0; b < index.branches(); ++b) {
    for (const uint32_t row : index.members(b)) {
      EXPECT_TRUE(seen.insert(row).second) << "row " << row << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), 500u);
}

TEST(CentroidIndexTest, FullSuperProbeMatchesExhaustive) {
  const Centroids c = MakeCentroids(300, 8, 2);
  auto index = CentroidIndex::Build(c, 0, 9).value();
  Dataset queries = GenerateDataset({"q", 8, Metric::kL2, 1, 20, 8, 0.3f, 3});
  for (size_t q = 0; q < 20; ++q) {
    // Exhaustive reference.
    CentroidSet set;
    set.centroids = c;
    set.partitions.resize(c.k);
    for (uint32_t i = 0; i < c.k; ++i) set.partitions[i] = i + 1;
    set.counts.assign(c.k, 1);
    const auto exact = set.FindNearestPartitions(queries.query(q), 10);
    // Accel with every super-cluster probed must agree.
    const auto rows = index.FindNearestRows(c, queries.query(q), 10,
                                            index.branches());
    std::vector<uint32_t> accel;
    for (const uint32_t r : rows) accel.push_back(r + 1);
    EXPECT_EQ(accel, exact) << "q=" << q;
  }
}

TEST(CentroidIndexTest, PartialProbeOverlapsHeavily) {
  const Centroids c = MakeCentroids(1000, 16, 4);
  auto index = CentroidIndex::Build(c, 0, 11).value();
  Dataset queries = GenerateDataset({"q", 16, Metric::kL2, 1, 50, 16, 0.3f, 5});
  double overlap = 0;
  for (size_t q = 0; q < 50; ++q) {
    CentroidSet set;
    set.centroids = c;
    set.partitions.resize(c.k);
    for (uint32_t i = 0; i < c.k; ++i) set.partitions[i] = i + 1;
    set.counts.assign(c.k, 1);
    const auto exact = set.FindNearestPartitions(queries.query(q), 8);
    const auto rows = index.FindNearestRows(c, queries.query(q), 8, 8);
    std::set<uint32_t> exact_set(exact.begin(), exact.end());
    size_t hits = 0;
    for (const uint32_t r : rows) hits += exact_set.count(r + 1);
    overlap += static_cast<double>(hits) /
               static_cast<double>(exact.size());
  }
  EXPECT_GE(overlap / 50, 0.8);  // 8 of ~32 branches probed: high overlap
}

TEST(CentroidIndexTest, SingleCentroidAndEmptyEdgeCases) {
  const Centroids one = MakeCentroids(1, 4, 6);
  auto index = CentroidIndex::Build(one, 0, 13).value();
  const auto rows = index.FindNearestRows(one, one.row(0), 5, 3);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0u);
  Centroids empty;
  empty.dim = 4;
  EXPECT_FALSE(CentroidIndex::Build(empty, 0, 1).ok());
}

TEST(CentroidIndexTest, DbUsesAccelAboveThreshold) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("micronn_cidx_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  Dataset ds = GenerateDataset({"t", 16, Metric::kL2, 6000, 30, 48, 0.15f,
                                77});
  DbOptions options;
  options.dim = 16;
  options.target_cluster_size = 20;       // 300 partitions
  options.centroid_index_threshold = 100; // force the accel path
  options.centroid_super_probe = 6;
  auto db = DB::Open(dir / "db.mnn", options).value();
  std::vector<UpsertRequest> batch;
  for (size_t i = 0; i < ds.spec.n; ++i) {
    UpsertRequest req;
    req.asset_id = "a" + std::to_string(i);
    req.vector.assign(ds.row(i), ds.row(i) + 16);
    batch.push_back(std::move(req));
  }
  ASSERT_TRUE(db->Upsert(batch).ok());
  ASSERT_TRUE(db->BuildIndex().ok());
  // Searches still reach >= 90% recall with the pruned centroid lookup.
  auto truth = BruteForceGroundTruth(ds, 10, 1);
  double recall = 0;
  for (size_t q = 0; q < 30; ++q) {
    SearchRequest req;
    req.query.assign(ds.query(q), ds.query(q) + 16);
    req.k = 10;
    req.nprobe = 16;
    auto resp = db->Search(req).value();
    std::vector<Neighbor> got;
    for (const auto& item : resp.items) got.push_back({item.vid, item.distance});
    recall += RecallAtK(got, truth[q]);
  }
  EXPECT_GE(recall / 30, 0.9);
  // Batch path exercises the accel probe loop too.
  std::vector<SearchRequest> requests(16);
  for (size_t q = 0; q < 16; ++q) {
    requests[q].query.assign(ds.query(q), ds.query(q) + 16);
    requests[q].k = 10;
    requests[q].nprobe = 16;
  }
  auto responses = db->BatchSearch(requests).value();
  for (size_t q = 0; q < 16; ++q) {
    auto single = db->Search(requests[q]).value();
    ASSERT_EQ(responses[q].items.size(), single.items.size());
    for (size_t i = 0; i < single.items.size(); ++i) {
      EXPECT_EQ(responses[q].items[i].vid, single.items[i].vid);
    }
  }
  db.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace micronn

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/memory_tracker.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace micronn {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, CopyableAndCheap) {
  Status s = Status::IOError("disk gone");
  Status t = s;
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), s.message());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MICRONN_ASSIGN_OR_RETURN(int h, Half(x));
  MICRONN_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal = all_equal && (va == vb);
    any_diff_seed_diff = any_diff_seed_diff || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(BytesTest, FixedRoundTrip) {
  std::string s;
  PutFixed32(&s, 0xdeadbeef);
  PutFixed64(&s, 0x0123456789abcdefULL);
  EXPECT_EQ(DecodeFixed32(s.data()), 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed64(s.data() + 4), 0x0123456789abcdefULL);
}

TEST(BytesTest, VarintRoundTrip) {
  const uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, 0xffffffffULL,
                             0xffffffffffffffffULL};
  std::string s;
  for (uint64_t v : values) PutVarint64(&s, v);
  const char* p = s.data();
  const char* limit = s.data() + s.size();
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&p, limit, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, limit);
}

TEST(BytesTest, VarintTruncatedFails) {
  std::string s;
  PutVarint64(&s, 0xffffffffffffffffULL);
  s.pop_back();
  const char* p = s.data();
  uint64_t got;
  EXPECT_FALSE(GetVarint64(&p, s.data() + s.size(), &got));
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  PutLengthPrefixed(&s, "");
  PutLengthPrefixed(&s, std::string(1000, 'x'));
  const char* p = s.data();
  const char* limit = s.data() + s.size();
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&p, limit, &a));
  ASSERT_TRUE(GetLengthPrefixed(&p, limit, &b));
  ASSERT_TRUE(GetLengthPrefixed(&p, limit, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
}

TEST(BytesTest, HashDiffersOnContent) {
  EXPECT_NE(Hash64("abc", 3), Hash64("abd", 3));
  EXPECT_EQ(Hash64("abc", 3), Hash64("abc", 3));
  EXPECT_NE(Hash64("abc", 3, 1), Hash64("abc", 3, 2));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRangesPartition) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  pool.ParallelForRanges(1000, [&total](size_t b, size_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(MemoryTrackerTest, TracksAllocationsAndPeak) {
  MemoryTracker& t = MemoryTracker::Global();
  const size_t base = t.CurrentTotal();
  t.ResetPeak();
  t.Allocate(MemoryCategory::kOther, 1000);
  EXPECT_GE(t.Current(MemoryCategory::kOther), 1000u);
  EXPECT_GE(t.PeakTotal(), base + 1000);
  t.Release(MemoryCategory::kOther, 1000);
  EXPECT_EQ(t.CurrentTotal(), base);
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 B.4 test vectors — these pin the polynomial and reflection,
  // so they hold for whichever kernel (hardware or software) the
  // dispatcher picked on this machine.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<uint8_t> inc(32);
  for (size_t i = 0; i < inc.size(); ++i) inc[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(inc.data(), inc.size()), 0x46DD794Eu);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShotAtEverySplit) {
  // Incremental extension must agree with the one-shot CRC across every
  // split point, including ones that misalign the 8-byte inner loop. The
  // buffer is larger than one 3-way stride (3*1360 bytes) so splits
  // cross-validate the multi-stream merge against the plain chain: most
  // tails are short enough to take the single-stream path while the
  // one-shot CRC takes the interleaved one.
  std::vector<uint8_t> buf(3 * 1360 + 137);
  Rng rng(42);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  const uint32_t whole = Crc32c(buf.data(), buf.size());
  for (size_t split = 0; split <= buf.size(); ++split) {
    const uint32_t head = Crc32c(buf.data(), split);
    EXPECT_EQ(Crc32cExtend(head, buf.data() + split, buf.size() - split),
              whole)
        << "split " << split;
  }
}

TEST(MemoryTrackerTest, ScopedReservation) {
  MemoryTracker& t = MemoryTracker::Global();
  const size_t base = t.CurrentTotal();
  {
    ScopedMemoryReservation r(MemoryCategory::kQueryExec, 512);
    EXPECT_EQ(t.CurrentTotal(), base + 512);
    r.Resize(1024);
    EXPECT_EQ(t.CurrentTotal(), base + 1024);
    r.Resize(256);
    EXPECT_EQ(t.CurrentTotal(), base + 256);
  }
  EXPECT_EQ(t.CurrentTotal(), base);
}

}  // namespace
}  // namespace micronn

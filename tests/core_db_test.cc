// End-to-end tests of the public DB API: lifecycle, recall, updates,
// hybrid search, batch MQO, maintenance, persistence, concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <numeric>
#include <thread>

#include "core/db.h"
#include "datagen/dataset.h"
#include "ivf/search.h"

namespace micronn {
namespace {

class DbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_db_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "test.mnn";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DbOptions SmallOptions(uint32_t dim, Metric metric = Metric::kL2) {
    DbOptions options;
    options.dim = dim;
    options.metric = metric;
    options.target_cluster_size = 50;
    options.minibatch_size = 256;
    options.train_iterations = 20;
    options.default_nprobe = 4;
    options.rebuild_chunk_rows = 512;
    return options;
  }

  // Loads `ds` into a fresh DB with asset ids "a<row>"; returns it.
  std::unique_ptr<DB> LoadDataset(const Dataset& ds, DbOptions options) {
    auto db = DB::Open(path_, options).value();
    std::vector<UpsertRequest> batch;
    for (size_t i = 0; i < ds.spec.n; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.assign(ds.row(i), ds.row(i) + ds.spec.dim);
      batch.push_back(std::move(req));
      if (batch.size() == 1000) {
        EXPECT_TRUE(db->Upsert(batch).ok());
        batch.clear();
      }
    }
    if (!batch.empty()) EXPECT_TRUE(db->Upsert(batch).ok());
    return db;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(DbTest, OpenRequiresDimOnCreate) {
  DbOptions options;  // dim = 0
  EXPECT_FALSE(DB::Open(path_, options).ok());
  options.dim = 8;
  EXPECT_TRUE(DB::Open(path_, options).ok());
}

TEST_F(DbTest, ReopenValidatesDim) {
  {
    auto db = DB::Open(path_, SmallOptions(8)).value();
  }
  DbOptions mismatched = SmallOptions(16);
  EXPECT_FALSE(DB::Open(path_, mismatched).ok());
  DbOptions inherit;
  inherit.dim = 0;  // "whatever the db says"
  auto db = DB::Open(path_, inherit).value();
  EXPECT_EQ(db->options().dim, 8u);
}

TEST_F(DbTest, SearchBeforeBuildScansDelta) {
  auto db = DB::Open(path_, SmallOptions(4)).value();
  ASSERT_TRUE(db->Upsert({{"x", {1, 0, 0, 0}, {}},
                          {"y", {0, 1, 0, 0}, {}},
                          {"z", {0, 0, 1, 0}, {}}})
                  .ok());
  SearchRequest req;
  req.query = {1, 0, 0, 0};
  req.k = 2;
  auto resp = db->Search(req).value();
  ASSERT_EQ(resp.items.size(), 2u);
  EXPECT_EQ(resp.items[0].asset_id, "x");
  EXPECT_FLOAT_EQ(resp.items[0].distance, 0.f);
}

TEST_F(DbTest, BuildIndexAndHighRecall) {
  Dataset ds =
      GenerateDataset({"t", 32, Metric::kL2, 8000, 50, 40, 0.15f, 21});
  auto db = LoadDataset(ds, SmallOptions(32));
  ASSERT_TRUE(db->BuildIndex().ok());
  auto stats = db->GetIndexStats().value();
  EXPECT_EQ(stats.n_partitions, 8000u / 50);
  EXPECT_EQ(stats.delta_count, 0u);
  EXPECT_EQ(stats.total_vectors, 8000u);

  // Recall@10 vs exact search at generous nprobe.
  auto truth = BruteForceGroundTruth(ds, 10, 1);
  double recall = 0;
  for (size_t q = 0; q < 50; ++q) {
    SearchRequest req;
    req.query.assign(ds.query(q), ds.query(q) + 32);
    req.k = 10;
    req.nprobe = 16;
    auto resp = db->Search(req).value();
    std::vector<Neighbor> got;
    for (const auto& item : resp.items) got.push_back({item.vid, item.distance});
    recall += RecallAtK(got, truth[q]);
  }
  EXPECT_GE(recall / 50, 0.9);
}

TEST_F(DbTest, ExactSearchMatchesBruteForce) {
  Dataset ds = GenerateDataset({"t", 16, Metric::kL2, 2000, 10, 16, 0.2f, 22});
  auto db = LoadDataset(ds, SmallOptions(16));
  ASSERT_TRUE(db->BuildIndex().ok());
  auto truth = BruteForceGroundTruth(ds, 10, 1);
  for (size_t q = 0; q < 10; ++q) {
    SearchRequest req;
    req.query.assign(ds.query(q), ds.query(q) + 16);
    req.k = 10;
    req.exact = true;
    auto resp = db->Search(req).value();
    ASSERT_EQ(resp.items.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(resp.items[i].vid, truth[q][i].id) << "q=" << q << " i=" << i;
    }
  }
}

TEST_F(DbTest, CosineMetricNormalizesAndSearches) {
  Dataset ds =
      GenerateDataset({"t", 24, Metric::kCosine, 3000, 20, 24, 0.2f, 23});
  auto db = LoadDataset(ds, SmallOptions(24, Metric::kCosine));
  ASSERT_TRUE(db->BuildIndex().ok());
  auto truth = BruteForceGroundTruth(ds, 10, 1);
  double recall = 0;
  for (size_t q = 0; q < 20; ++q) {
    SearchRequest req;
    req.query.assign(ds.query(q), ds.query(q) + 24);
    req.k = 10;
    req.nprobe = 12;
    auto resp = db->Search(req).value();
    std::vector<Neighbor> got;
    for (const auto& item : resp.items) got.push_back({item.vid, item.distance});
    recall += RecallAtK(got, truth[q]);
  }
  EXPECT_GE(recall / 20, 0.9);
}

TEST_F(DbTest, UpsertReplacesVectorAndAttributes) {
  auto db = DB::Open(path_, SmallOptions(4)).value();
  AttributeRecord attrs;
  attrs["color"] = AttributeValue::String("red");
  ASSERT_TRUE(db->Upsert({{"item", {1, 0, 0, 0}, attrs}}).ok());
  // Replace with a different vector + attribute.
  attrs["color"] = AttributeValue::String("blue");
  ASSERT_TRUE(db->Upsert({{"item", {0, 0, 0, 1}, attrs}}).ok());
  EXPECT_EQ(db->VectorCount().value(), 1u);

  SearchRequest req;
  req.query = {0, 0, 0, 1};
  req.k = 1;
  auto resp = db->Search(req).value();
  ASSERT_EQ(resp.items.size(), 1u);
  EXPECT_EQ(resp.items[0].asset_id, "item");
  EXPECT_FLOAT_EQ(resp.items[0].distance, 0.f);

  // Old attribute no longer matches; new one does.
  req.filter = Predicate::Compare("color", CompareOp::kEq,
                                  AttributeValue::String("red"));
  EXPECT_TRUE(db->Search(req).value().items.empty());
  req.filter = Predicate::Compare("color", CompareOp::kEq,
                                  AttributeValue::String("blue"));
  EXPECT_EQ(db->Search(req).value().items.size(), 1u);
}

TEST_F(DbTest, DeleteRemovesFromSearch) {
  auto db = DB::Open(path_, SmallOptions(4)).value();
  ASSERT_TRUE(db->Upsert({{"keep", {1, 0, 0, 0}, {}},
                          {"drop", {0.9f, 0, 0, 0}, {}}})
                  .ok());
  ASSERT_TRUE(db->Delete({"drop", "never-existed"}).ok());
  EXPECT_EQ(db->VectorCount().value(), 1u);
  SearchRequest req;
  req.query = {1, 0, 0, 0};
  req.k = 5;
  auto resp = db->Search(req).value();
  ASSERT_EQ(resp.items.size(), 1u);
  EXPECT_EQ(resp.items[0].asset_id, "keep");
}

TEST_F(DbTest, DeleteAfterBuildIsReflected) {
  Dataset ds = GenerateDataset({"t", 8, Metric::kL2, 1000, 5, 8, 0.2f, 24});
  auto db = LoadDataset(ds, SmallOptions(8));
  ASSERT_TRUE(db->BuildIndex().ok());
  // Delete the exact nearest neighbour of query 0 and verify it vanishes.
  SearchRequest req;
  req.query.assign(ds.query(0), ds.query(0) + 8);
  req.k = 1;
  req.nprobe = 8;
  auto before = db->Search(req).value();
  ASSERT_EQ(before.items.size(), 1u);
  const std::string victim = before.items[0].asset_id;
  ASSERT_TRUE(db->Delete({victim}).ok());
  auto after = db->Search(req).value();
  ASSERT_EQ(after.items.size(), 1u);
  EXPECT_NE(after.items[0].asset_id, victim);
}

TEST_F(DbTest, HybridPreAndPostFilterAgreeOnSelectiveQueries) {
  Dataset ds = GenerateDataset({"t", 16, Metric::kL2, 3000, 10, 24, 0.2f, 25});
  DbOptions options = SmallOptions(16);
  auto db = DB::Open(path_, options).value();
  std::vector<UpsertRequest> batch;
  for (size_t i = 0; i < ds.spec.n; ++i) {
    UpsertRequest req;
    req.asset_id = "a" + std::to_string(i);
    req.vector.assign(ds.row(i), ds.row(i) + 16);
    req.attributes["bucket"] = AttributeValue::Int(static_cast<int64_t>(i % 100));
    batch.push_back(std::move(req));
  }
  ASSERT_TRUE(db->Upsert(batch).ok());
  ASSERT_TRUE(db->BuildIndex().ok());

  SearchRequest req;
  req.query.assign(ds.query(0), ds.query(0) + 16);
  req.k = 5;
  req.nprobe = 24;  // all partitions of 3000/50 = 60? generous probe
  req.filter = Predicate::Compare("bucket", CompareOp::kEq,
                                  AttributeValue::Int(7));
  req.plan = PlanOverride::kForcePreFilter;
  auto pre = db->Search(req).value();
  EXPECT_EQ(pre.plan, QueryPlan::kPreFilter);
  for (const auto& item : pre.items) {
    EXPECT_EQ(item.vid % 100, 8u);  // vid = row + 1; bucket = row % 100
  }
  // Exact search with the same filter must agree with pre-filter (both are
  // exact over the qualifying subset).
  req.plan = PlanOverride::kAuto;
  req.exact = true;
  auto exact = db->Search(req).value();
  ASSERT_EQ(exact.items.size(), pre.items.size());
  for (size_t i = 0; i < exact.items.size(); ++i) {
    EXPECT_EQ(exact.items[i].vid, pre.items[i].vid);
  }
}

TEST_F(DbTest, OptimizerPicksPreFilterForSelectivePredicates) {
  Dataset ds = GenerateDataset({"t", 8, Metric::kL2, 5000, 5, 16, 0.2f, 26});
  auto db = DB::Open(path_, SmallOptions(8)).value();
  std::vector<UpsertRequest> batch;
  for (size_t i = 0; i < ds.spec.n; ++i) {
    UpsertRequest req;
    req.asset_id = "a" + std::to_string(i);
    req.vector.assign(ds.row(i), ds.row(i) + 8);
    // "rare" hits 0.1% of rows; "common" hits 90%.
    req.attributes["kind"] = AttributeValue::String(
        i % 1000 == 0 ? "rare" : (i % 10 != 9 ? "common" : "other"));
    batch.push_back(std::move(req));
  }
  ASSERT_TRUE(db->Upsert(batch).ok());
  ASSERT_TRUE(db->BuildIndex().ok());  // also runs AnalyzeStats

  SearchRequest req;
  req.query.assign(ds.query(0), ds.query(0) + 8);
  req.k = 3;
  req.filter = Predicate::Compare("kind", CompareOp::kEq,
                                  AttributeValue::String("rare"));
  auto rare = db->Search(req).value();
  EXPECT_EQ(rare.plan, QueryPlan::kPreFilter);
  EXPECT_LT(rare.decision.filter_selectivity, rare.decision.ivf_selectivity);

  req.filter = Predicate::Compare("kind", CompareOp::kEq,
                                  AttributeValue::String("common"));
  auto common = db->Search(req).value();
  EXPECT_EQ(common.plan, QueryPlan::kPostFilter);
  EXPECT_GE(common.decision.filter_selectivity,
            common.decision.ivf_selectivity);
}

TEST_F(DbTest, FtsMatchFilter) {
  DbOptions options = SmallOptions(4);
  options.fts_columns = {"tags"};
  auto db = DB::Open(path_, options).value();
  AttributeRecord a1, a2;
  a1["tags"] = AttributeValue::String("cat yarn black");
  a2["tags"] = AttributeValue::String("dog park");
  ASSERT_TRUE(db->Upsert({{"pic1", {1, 0, 0, 0}, a1},
                          {"pic2", {0.9f, 0.1f, 0, 0}, a2}})
                  .ok());
  SearchRequest req;
  req.query = {1, 0, 0, 0};
  req.k = 5;
  req.filter = Predicate::Match("tags", "cat yarn");
  auto resp = db->Search(req).value();
  ASSERT_EQ(resp.items.size(), 1u);
  EXPECT_EQ(resp.items[0].asset_id, "pic1");
}

TEST_F(DbTest, BatchSearchMatchesSequentialSearch) {
  Dataset ds = GenerateDataset({"t", 16, Metric::kL2, 4000, 64, 24, 0.2f, 27});
  auto db = LoadDataset(ds, SmallOptions(16));
  ASSERT_TRUE(db->BuildIndex().ok());
  std::vector<SearchRequest> requests(64);
  for (size_t q = 0; q < 64; ++q) {
    requests[q].query.assign(ds.query(q), ds.query(q) + 16);
    requests[q].k = 10;
    requests[q].nprobe = 6;
  }
  auto batch = db->BatchSearch(requests).value();
  ASSERT_EQ(batch.size(), 64u);
  for (size_t q = 0; q < 64; ++q) {
    auto single = db->Search(requests[q]).value();
    ASSERT_EQ(batch[q].items.size(), single.items.size()) << q;
    for (size_t i = 0; i < single.items.size(); ++i) {
      EXPECT_EQ(batch[q].items[i].vid, single.items[i].vid)
          << "q=" << q << " i=" << i;
    }
  }
}

TEST_F(DbTest, BatchSearchScansPartitionsOnce) {
  Dataset ds = GenerateDataset({"t", 8, Metric::kL2, 2000, 32, 16, 0.2f, 28});
  auto db = LoadDataset(ds, SmallOptions(8));
  ASSERT_TRUE(db->BuildIndex().ok());
  std::vector<SearchRequest> requests(32);
  for (size_t q = 0; q < 32; ++q) {
    requests[q].query.assign(ds.query(q), ds.query(q) + 8);
    requests[q].k = 5;
    requests[q].nprobe = 4;
  }
  auto batch = db->BatchSearch(requests).value();
  // Unique partitions scanned must be <= #partitions + delta, far below
  // 32 queries x 5 partitions.
  const auto stats = db->GetIndexStats().value();
  EXPECT_LE(batch[0].partitions_scanned, stats.n_partitions + 1);
}

TEST_F(DbTest, MaintainFlushesDelta) {
  Dataset ds = GenerateDataset({"t", 8, Metric::kL2, 2000, 5, 16, 0.2f, 29});
  auto db = LoadDataset(ds, SmallOptions(8));
  ASSERT_TRUE(db->BuildIndex().ok());
  // Insert 100 more vectors -> they sit in the delta store.
  std::vector<UpsertRequest> more;
  for (int i = 0; i < 100; ++i) {
    UpsertRequest req;
    req.asset_id = "new" + std::to_string(i);
    req.vector.assign(ds.row(i), ds.row(i) + 8);
    more.push_back(std::move(req));
  }
  ASSERT_TRUE(db->Upsert(more).ok());
  EXPECT_EQ(db->GetIndexStats().value().delta_count, 100u);

  auto report = db->Maintain().value();
  EXPECT_FALSE(report.full_rebuild);
  EXPECT_EQ(report.delta_flushed, 100u);
  auto stats = db->GetIndexStats().value();
  EXPECT_EQ(stats.delta_count, 0u);
  EXPECT_EQ(stats.total_vectors, 2100u);

  // All vectors still findable.
  SearchRequest req;
  req.query.assign(ds.row(0), ds.row(0) + 8);
  req.k = 2;
  req.nprobe = 8;
  auto resp = db->Search(req).value();
  ASSERT_GE(resp.items.size(), 2u);
  EXPECT_FLOAT_EQ(resp.items[0].distance, 0.f);
}

TEST_F(DbTest, MaintainEscalatesToFullRebuild) {
  Dataset ds = GenerateDataset({"t", 8, Metric::kL2, 1000, 5, 8, 0.2f, 30});
  DbOptions options = SmallOptions(8);
  options.rebuild_growth_threshold = 0.5;
  auto db = LoadDataset(ds, options);
  ASSERT_TRUE(db->BuildIndex().ok());
  const auto before = db->GetIndexStats().value();
  // Insert 60% more: the projected average exceeds base * 1.5.
  std::vector<UpsertRequest> more;
  for (int i = 0; i < 600; ++i) {
    UpsertRequest req;
    req.asset_id = "m" + std::to_string(i);
    req.vector.assign(ds.row(i % 1000), ds.row(i % 1000) + 8);
    more.push_back(std::move(req));
  }
  ASSERT_TRUE(db->Upsert(more).ok());
  auto report = db->Maintain().value();
  EXPECT_TRUE(report.full_rebuild);
  const auto after = db->GetIndexStats().value();
  EXPECT_GT(after.n_partitions, before.n_partitions);
  EXPECT_EQ(after.delta_count, 0u);
  EXPECT_GT(after.index_version, before.index_version);
}

TEST_F(DbTest, PersistenceAcrossReopen) {
  Dataset ds = GenerateDataset({"t", 8, Metric::kL2, 1500, 5, 12, 0.2f, 31});
  {
    auto db = LoadDataset(ds, SmallOptions(8));
    ASSERT_TRUE(db->BuildIndex().ok());
    ASSERT_TRUE(db->Close().ok());
  }
  DbOptions inherit;
  inherit.dim = 0;
  auto db = DB::Open(path_, inherit).value();
  EXPECT_EQ(db->VectorCount().value(), 1500u);
  auto stats = db->GetIndexStats().value();
  EXPECT_EQ(stats.n_partitions, 1500u / 50);
  SearchRequest req;
  req.query.assign(ds.row(7), ds.row(7) + 8);
  req.k = 1;
  req.nprobe = 4;
  auto resp = db->Search(req).value();
  ASSERT_EQ(resp.items.size(), 1u);
  EXPECT_EQ(resp.items[0].asset_id, "a7");
}

TEST_F(DbTest, ConcurrentSearchesDuringWrites) {
  Dataset ds = GenerateDataset({"t", 8, Metric::kL2, 2000, 10, 16, 0.2f, 32});
  auto db = LoadDataset(ds, SmallOptions(8));
  ASSERT_TRUE(db->BuildIndex().ok());
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<int> searches{0};
  std::atomic<int> readers_warm{0};  // readers that completed >= 1 search
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      size_t q = t;
      bool first = true;
      while (!stop.load()) {
        SearchRequest req;
        req.query.assign(ds.query(q % 10), ds.query(q % 10) + 8);
        req.k = 10;
        auto resp = db->Search(req);
        if (!resp.ok() || resp->items.empty()) ++errors;
        ++searches;
        ++q;
        if (first) {
          first = false;
          ++readers_warm;
        }
      }
    });
  }
  // Don't start writing until both readers are demonstrably searching;
  // otherwise on a loaded (or single-core) machine the writer can finish
  // before the reader threads are scheduled, vacuously passing the
  // progress assertion below.
  while (readers_warm.load() < 2) {
    std::this_thread::yield();
  }
  // Writer: interleave upserts, deletes, and a maintenance pass.
  for (int round = 0; round < 5; ++round) {
    std::vector<UpsertRequest> batch;
    for (int i = 0; i < 50; ++i) {
      UpsertRequest req;
      req.asset_id = "live" + std::to_string(round * 50 + i);
      req.vector.assign(ds.row(i), ds.row(i) + 8);
      batch.push_back(std::move(req));
    }
    ASSERT_TRUE(db->Upsert(batch).ok());
    ASSERT_TRUE(db->Delete({"live" + std::to_string(round * 50)}).ok());
  }
  ASSERT_TRUE(db->Maintain().ok());
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(searches.load(), 0);
}

TEST_F(DbTest, ConcurrentSearchesDuringFullRebuild) {
  Dataset ds = GenerateDataset({"t", 8, Metric::kL2, 3000, 10, 16, 0.2f, 33});
  auto db = LoadDataset(ds, SmallOptions(8));
  ASSERT_TRUE(db->BuildIndex().ok());
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread reader([&] {
    size_t q = 0;
    while (!stop.load()) {
      SearchRequest req;
      req.query.assign(ds.query(q % 10), ds.query(q % 10) + 8);
      req.k = 5;
      auto resp = db->Search(req);
      if (!resp.ok() || resp->items.size() != 5) ++errors;
      ++q;
    }
  });
  ASSERT_TRUE(db->BuildIndex().ok());  // rebuild under live queries
  stop.store(true);
  reader.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(DbTest, DropCachesColdStartStillCorrect) {
  Dataset ds = GenerateDataset({"t", 8, Metric::kL2, 1000, 5, 8, 0.2f, 34});
  auto db = LoadDataset(ds, SmallOptions(8));
  ASSERT_TRUE(db->BuildIndex().ok());
  SearchRequest req;
  req.query.assign(ds.query(0), ds.query(0) + 8);
  req.k = 5;
  req.nprobe = 8;
  auto warm = db->Search(req).value();
  db->DropCaches();
  auto cold = db->Search(req).value();
  ASSERT_EQ(warm.items.size(), cold.items.size());
  for (size_t i = 0; i < warm.items.size(); ++i) {
    EXPECT_EQ(warm.items[i].vid, cold.items[i].vid);
  }
}

TEST_F(DbTest, DimensionMismatchRejected) {
  auto db = DB::Open(path_, SmallOptions(4)).value();
  EXPECT_FALSE(db->Upsert({{"bad", {1, 2, 3}, {}}}).ok());
  SearchRequest req;
  req.query = {1, 2};
  req.k = 1;
  EXPECT_FALSE(db->Search(req).ok());
}

TEST_F(DbTest, EmptyDatabaseBehaviour) {
  auto db = DB::Open(path_, SmallOptions(4)).value();
  SearchRequest req;
  req.query = {0, 0, 0, 0};
  req.k = 5;
  auto resp = db->Search(req).value();
  EXPECT_TRUE(resp.items.empty());
  EXPECT_TRUE(db->BuildIndex().ok());  // no-op build
  EXPECT_EQ(db->GetIndexStats().value().n_partitions, 0u);
  auto report = db->Maintain().value();
  EXPECT_FALSE(report.full_rebuild);
}

TEST_F(DbTest, RebuildChunkingBoundsDirtySet) {
  // Chunk size smaller than the collection: the rebuild must make many
  // small commits rather than one huge one.
  Dataset ds = GenerateDataset({"t", 8, Metric::kL2, 2000, 5, 16, 0.2f, 35});
  DbOptions options = SmallOptions(8);
  options.rebuild_chunk_rows = 100;
  auto db = LoadDataset(ds, options);
  const uint64_t commits_before =
      db->io_stats().commits.load(std::memory_order_relaxed);
  ASSERT_TRUE(db->BuildIndex().ok());
  const uint64_t commits_after =
      db->io_stats().commits.load(std::memory_order_relaxed);
  EXPECT_GT(commits_after - commits_before, 2000u / 100);
  // And the index still works.
  SearchRequest req;
  req.query.assign(ds.row(3), ds.row(3) + 8);
  req.k = 1;
  auto resp = db->Search(req).value();
  EXPECT_EQ(resp.items[0].asset_id, "a3");
}

}  // namespace
}  // namespace micronn

// Randomized corruption sweep: flip seeded random bytes in the database
// file (and its checksum sidecar), reopen, and run the query mix. The
// contract under arbitrary single-byte corruption is absolute — every
// response is either verifiably CORRECT against in-memory ground truth,
// or an explicit Corruption error, or a smaller-but-correct result set
// with the quarantine flagged in EXPLAIN. A silently wrong row (bogus
// asset id, wrong distance, row violating the filter) fails the sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "core/maintainer.h"
#include "numerics/distance.h"

namespace micronn {
namespace {

struct GroundTruth {
  std::map<std::string, std::vector<float>> vectors;
  std::map<std::string, int64_t> years;
};

// Trial count of the randomized sweeps. MICRONN_SWEEP_TRIALS overrides
// the default 12 — CI's nightly/soak legs crank it up without a rebuild.
int SweepTrials() {
  const char* env = std::getenv("MICRONN_SWEEP_TRIALS");
  if (env == nullptr || *env == '\0') return 12;
  const int n = std::atoi(env);
  return n > 0 ? n : 12;
}

class CorruptionSweepTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDim = 8;
  static constexpr int kRows = 300;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_sweep_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "db").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DbOptions Options() const {
    DbOptions options;
    options.dim = kDim;
    options.target_cluster_size = 32;  // several partitions at kRows
    return options;
  }

  // Builds the pristine database (clustered index + a delta-store tail)
  // and records ground truth, then closes it and snapshots its files.
  void BuildPristine() {
    std::mt19937 rng(7);
    std::uniform_real_distribution<float> dist(-1.f, 1.f);
    auto db = DB::Open(path_, Options()).value();
    std::vector<UpsertRequest> batch;
    for (int i = 0; i < kRows; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.resize(kDim);
      for (float& v : req.vector) v = dist(rng);
      const int64_t year = 2015 + (i % 12);
      req.attributes["year"] = AttributeValue::Int(year);
      truth_.vectors[req.asset_id] = req.vector;
      truth_.years[req.asset_id] = year;
      batch.push_back(std::move(req));
      if (batch.size() == 64) {
        ASSERT_TRUE(db->Upsert(batch).ok());
        batch.clear();
      }
    }
    if (!batch.empty()) ASSERT_TRUE(db->Upsert(batch).ok());
    ASSERT_TRUE(db->BuildIndex().ok());
    ASSERT_TRUE(db->AnalyzeStats().ok());
    // A delta-store tail so the sweep also covers the unclustered path.
    batch.clear();
    for (int i = kRows; i < kRows + 20; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.resize(kDim);
      for (float& v : req.vector) v = dist(rng);
      req.attributes["year"] = AttributeValue::Int(2026);
      truth_.vectors[req.asset_id] = req.vector;
      truth_.years[req.asset_id] = 2026;
      batch.push_back(std::move(req));
    }
    ASSERT_TRUE(db->Upsert(batch).ok());
    ASSERT_TRUE(db->Close().ok());

    for (const char* suffix : {"", "-sum", "-wal"}) {
      const std::string f = path_ + suffix;
      if (std::filesystem::exists(f)) {
        std::filesystem::copy_file(f, f + ".orig");
        pristine_.push_back(f);
      }
    }
  }

  void RestorePristine() {
    for (const std::string& f : pristine_) {
      std::filesystem::copy_file(f + ".orig", f,
                                 std::filesystem::copy_options::overwrite_existing);
    }
  }

  static void FlipByte(const std::string& file, uint64_t offset) {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << file;
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    ASSERT_TRUE(f.good()) << file << " @" << offset;
    b = static_cast<char>(b ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
    ASSERT_TRUE(f.good());
  }

  // A failure is acceptable only if it is an explicit integrity error —
  // never a crash, never a silent success with wrong data.
  static bool AcceptableFailure(const Status& st) {
    return st.IsCorruption() || st.IsIOError();
  }

  // Every returned row must be genuine: a known asset whose exact
  // distance to the query matches ground truth. `min_year` > 0 also
  // checks the filter predicate against the true attribute value.
  void VerifyItems(const std::vector<float>& query,
                   const std::vector<ResultItem>& items, int64_t min_year,
                   const char* what) {
    for (const ResultItem& item : items) {
      auto it = truth_.vectors.find(item.asset_id);
      ASSERT_NE(it, truth_.vectors.end())
          << what << ": fabricated asset id " << item.asset_id;
      const float want =
          Distance(Options().metric, query.data(), it->second.data(), kDim);
      EXPECT_NEAR(item.distance, want, 1e-3f)
          << what << ": wrong distance for " << item.asset_id;
      if (min_year > 0) {
        EXPECT_GE(truth_.years[item.asset_id], min_year)
            << what << ": row violates filter: " << item.asset_id;
      }
    }
  }

  // Runs the query mix. Each query either verifies or fails acceptably.
  // Returns the number of queries that surfaced Corruption.
  int RunQueryMix(DB* db, std::mt19937& rng) {
    std::uniform_real_distribution<float> dist(-1.f, 1.f);
    int corruptions = 0;
    for (int q = 0; q < 6; ++q) {
      std::vector<float> query(kDim);
      for (float& v : query) v = dist(rng);

      SearchRequest req;
      req.query = query;
      req.k = 10;
      req.nprobe = 4;
      if (q % 3 == 1) {
        req.filter = Predicate::Compare("year", CompareOp::kGe,
                                        AttributeValue::Int(2020));
      } else if (q % 3 == 2) {
        req.exact = true;
        req.k = 5;
      }
      Result<SearchResponse> resp = db->Search(req);
      if (!resp.ok()) {
        EXPECT_TRUE(AcceptableFailure(resp.status()))
            << "query " << q << ": " << resp.status().ToString();
        ++corruptions;
        continue;
      }
      const int64_t min_year = (q % 3 == 1) ? 2020 : 0;
      VerifyItems(query, resp->items, min_year, "query");
      if (resp->explain.partitions_quarantined > 0 ||
          resp->explain.rows_quarantined > 0) {
        ++corruptions;  // served degraded, flagged in EXPLAIN
      }
    }
    return corruptions;
  }

  std::filesystem::path dir_;
  std::string path_;
  GroundTruth truth_;
  std::vector<std::string> pristine_;
};

TEST_F(CorruptionSweepTest, RandomByteFlipsNeverProduceWrongRows) {
  BuildPristine();
  const uint64_t db_size = std::filesystem::file_size(path_);
  ASSERT_GT(db_size, 0u);

  std::mt19937 rng(20260808);
  int detected_trials = 0;
  const int kTrials = SweepTrials();
  const int kSidecarTrials = std::max(2, kTrials / 6);
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    RestorePristine();

    // Most trials corrupt the database file; the last few corrupt the
    // checksum sidecar (a bad checksum over a good page must read as
    // Corruption, and Scrub must not "repair" the good page into
    // garbage).
    std::string victim = path_;
    uint64_t limit = db_size;
    if (trial >= kTrials - kSidecarTrials &&
        std::filesystem::exists(path_ + "-sum")) {
      victim = path_ + "-sum";
      limit = std::filesystem::file_size(victim);
    }
    const int flips = 1 + static_cast<int>(rng() % 3);
    for (int f = 0; f < flips; ++f) {
      FlipByte(victim, rng() % limit);
    }

    Result<std::unique_ptr<DB>> open = DB::Open(path_, Options());
    if (!open.ok()) {
      EXPECT_TRUE(AcceptableFailure(open.status()))
          << open.status().ToString();
      ++detected_trials;
      continue;
    }
    DB* db = open->get();
    db->DropCaches();  // force every page through the (corrupted) disk

    int corruptions = RunQueryMix(db, rng);

    // Scrub is always safe to run and must never fabricate data: after
    // it, the query mix still holds the same correct-or-Corruption bar.
    Result<ScrubReport> scrub = db->Scrub();
    if (scrub.ok()) {
      corruptions += static_cast<int>(scrub->corruptions_found);
      corruptions += RunQueryMix(db, rng);
    } else {
      EXPECT_TRUE(AcceptableFailure(scrub.status()))
          << scrub.status().ToString();
      ++corruptions;
    }
    corruptions += static_cast<int>(
        db->io_stats().corruptions_detected.load(std::memory_order_relaxed));
    if (corruptions > 0) ++detected_trials;
    db->Close().ok();  // best-effort: the store may be corrupt
  }

  // The sweep is only meaningful if the flips actually bit somewhere.
  EXPECT_GE(detected_trials, kTrials / 2)
      << "corruption went undetected in most trials — checksum coverage "
         "has a hole";

  // And the pristine copy still serves everything correctly.
  RestorePristine();
  auto db = DB::Open(path_, Options()).value();
  std::mt19937 verify_rng(1);
  EXPECT_EQ(RunQueryMix(db.get(), verify_rng), 0);
  EXPECT_TRUE(db->Close().ok());
}

// Short soak with the background healer running: random flips, then the
// query mix runs while a HealthMonitor scrubs behind it. The bar is the
// same — correct-or-explicit-Corruption, never silently wrong — plus the
// healer must actually complete passes whenever corruption was observed.
// CI's Release leg runs this with MICRONN_SWEEP_TRIALS raised.
TEST_F(CorruptionSweepTest, BackgroundHealerSoakNeverProducesWrongRows) {
  BuildPristine();
  const uint64_t db_size = std::filesystem::file_size(path_);
  ASSERT_GT(db_size, 0u);

  std::mt19937 rng(20260809);
  const int kTrials = std::max(3, SweepTrials() / 3);
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("soak trial " + std::to_string(trial));
    RestorePristine();
    const int flips = 1 + static_cast<int>(rng() % 3);
    for (int f = 0; f < flips; ++f) {
      FlipByte(path_, rng() % db_size);
    }

    Result<std::unique_ptr<DB>> open = DB::Open(path_, Options());
    if (!open.ok()) {
      EXPECT_TRUE(AcceptableFailure(open.status()))
          << open.status().ToString();
      continue;
    }
    DB* db = open->get();
    db->DropCaches();

    HealthMonitor::Options mon;
    mon.interval = std::chrono::milliseconds(3);
    mon.scrub_batch_pages = 32;
    mon.scrub_io_budget_bytes_per_sec = 0;  // unthrottled: keep CI short
    // Cold-start coverage: this database was just reopened over damaged
    // files, exactly the case where queries may never touch the bad page
    // but a scheduled verification pass finds it.
    mon.scrub_verify_on_start = true;
    HealthMonitor monitor(db, mon);

    // Traffic while the healer works. Each mix holds the usual bar.
    bool observed = false;
    for (int round = 0; round < 4; ++round) {
      observed = RunQueryMix(db, rng) > 0 || observed;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    observed = observed || db->Health().corruptions_detected > 0;

    if (observed) {
      // The healer saw it too: wait for a completed pass, then the mix
      // must still be correct (possibly Corruption where the damage was
      // unrepairable, but never wrong rows).
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (monitor.passes_completed() == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        monitor.TriggerNow();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      EXPECT_GE(monitor.passes_completed(), 1u);
    }
    RunQueryMix(db, rng);
    monitor.Stop();
    db->Close().ok();  // best-effort: the store may be corrupt
  }
}

}  // namespace
}  // namespace micronn

// ENOSPC crash matrix: a full filesystem mid-commit, mid-checkpoint, or
// mid-WAL-flush must never acknowledge a torn write. The pager rolls the
// transaction back, flips into read-only degraded mode (reads keep
// serving every committed snapshot, writes fail fast), auto-recovers once
// space returns, and a reopen from any of these states comes up clean
// with exactly the acknowledged data.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "core/db.h"
#include "storage/engine.h"
#include "storage/key_encoding.h"
#include "support/fault_injection_file.h"

namespace micronn {
namespace {

// Shared handle registry: the wrapper hands out raw pointers so tests can
// re-arm schedules mid-run ("the disk fills up now", "space is freed").
// Pointers stay valid while the engine that owns the files is open.
struct FaultRig {
  std::map<std::string, FaultInjectionFile*> files;

  void ArmEnospcEverywhere() {
    FaultSchedule s;
    s.enospc_after = 1;
    for (auto& [role, f] : files) f->set_schedule(s);
  }
  void FreeSpace() {
    for (auto& [role, f] : files) f->set_schedule(FaultSchedule{});
  }
};

std::function<std::unique_ptr<FileHandle>(std::unique_ptr<FileHandle>,
                                          std::string_view)>
MakeWrapper(std::shared_ptr<FaultRig> rig) {
  return [rig](std::unique_ptr<FileHandle> base, std::string_view role) {
    auto f = std::make_unique<FaultInjectionFile>(std::move(base),
                                                 FaultSchedule{});
    rig->files[std::string(role)] = f.get();
    return std::unique_ptr<FileHandle>(std::move(f));
  };
}

class EnospcRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_enospc_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "db";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Status CommitRows(StorageEngine* engine, uint64_t start,
                           uint64_t rows) {
    MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<WriteTransaction> txn,
                             engine->BeginWrite());
    Result<BTree> t = txn->OpenOrCreateTable("t");
    if (!t.ok()) {
      engine->Rollback(std::move(txn));
      return t.status();
    }
    for (uint64_t i = start; i < start + rows; ++i) {
      Status st = t->Put(key::U64(i), "row-" + std::to_string(i) +
                                          std::string(60, 'p'));
      if (!st.ok()) {
        engine->Rollback(std::move(txn));
        return st;
      }
    }
    txn->AddRowDelta("t", static_cast<int64_t>(rows));
    return engine->Commit(std::move(txn));
  }

  static Result<uint64_t> CountRows(StorageEngine* engine) {
    MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<ReadTransaction> txn,
                             engine->BeginRead());
    MICRONN_ASSIGN_OR_RETURN(BTree t, txn->OpenTable("t"));
    BTreeCursor c = t.NewCursor();
    MICRONN_RETURN_IF_ERROR(c.SeekToFirst());
    uint64_t n = 0;
    while (c.Valid()) {
      ++n;
      MICRONN_RETURN_IF_ERROR(c.Next());
    }
    return n;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(EnospcRecoveryTest, MidCommitRollsBackDegradesAndRecovers) {
  auto rig = std::make_shared<FaultRig>();
  PagerOptions options;
  options.file_wrapper = MakeWrapper(rig);
  // This test frees space immediately after a *failed* probe and expects
  // the very next write to recover; disable the probe backoff so that
  // write actually probes (DegradedProbeIsRateLimited covers the limiter).
  options.enospc_probe_backoff_ms = 0;
  auto engine = StorageEngine::Open(path_, options).value();
  ASSERT_TRUE(CommitRows(engine.get(), 0, 200).ok());

  // The disk fills up: the next commit's WAL append fails. Nothing of the
  // batch may be acknowledged or visible.
  rig->ArmEnospcEverywhere();
  Status st = CommitRows(engine.get(), 200, 100);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_TRUE(engine->pager()->degraded());

  // Degraded mode: reads keep serving the committed state...
  EXPECT_EQ(CountRows(engine.get()).value(), 200u);
  // ...and writes fail fast (the space probe finds the disk still full).
  st = CommitRows(engine.get(), 200, 100);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(CountRows(engine.get()).value(), 200u);

  // Space is freed: the next write's probe clears degraded mode and the
  // commit lands normally.
  rig->FreeSpace();
  ASSERT_TRUE(CommitRows(engine.get(), 200, 100).ok());
  EXPECT_FALSE(engine->pager()->degraded());
  EXPECT_EQ(CountRows(engine.get()).value(), 300u);
}

// The space probe is rate-limited: while the disk stays full, repeated
// write attempts fail fast out of an exponential backoff window instead
// of issuing filesystem syscalls each time; a successful probe resets
// the schedule so the next incident starts fresh.
TEST_F(EnospcRecoveryTest, DegradedProbeIsRateLimited) {
  auto rig = std::make_shared<FaultRig>();
  PagerOptions options;
  options.file_wrapper = MakeWrapper(rig);
  options.enospc_probe_backoff_ms = 100;  // wide windows: the count stays low
  options.enospc_probe_max_backoff_ms = 400;
  auto engine = StorageEngine::Open(path_, options).value();
  ASSERT_TRUE(CommitRows(engine.get(), 0, 100).ok());

  rig->ArmEnospcEverywhere();
  ASSERT_FALSE(CommitRows(engine.get(), 100, 10).ok());
  ASSERT_TRUE(engine->pager()->degraded());

  // Hammer writes while the disk stays full. Every attempt fails fast;
  // only a handful actually probe (100/200/400ms windows), where an
  // unlimited prober would have probed on all 25.
  const uint64_t probes_before = engine->io_stats().Snapshot().enospc_probes;
  for (int i = 0; i < 25; ++i) {
    ASSERT_FALSE(CommitRows(engine.get(), 100, 10).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const uint64_t probes =
      engine->io_stats().Snapshot().enospc_probes - probes_before;
  EXPECT_GE(probes, 1u);
  EXPECT_LE(probes, 8u) << "probe backoff is not limiting syscalls";

  // Space returns: recovery waits out at most one backoff window.
  rig->FreeSpace();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine->pager()->degraded() &&
         std::chrono::steady_clock::now() < deadline) {
    CommitRows(engine.get(), 100, 10).ok();  // probes once the window opens
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(engine->pager()->degraded());
  EXPECT_EQ(CountRows(engine.get()).value(), 110u);
}

TEST_F(EnospcRecoveryTest, MidCheckpointDegradesAndRecovers) {
  auto rig = std::make_shared<FaultRig>();
  PagerOptions options;
  options.auto_checkpoint_frames = 0;  // checkpoint only when told to
  options.file_wrapper = MakeWrapper(rig);
  auto engine = StorageEngine::Open(path_, options).value();
  ASSERT_TRUE(CommitRows(engine.get(), 0, 300).ok());

  // The checkpoint's fold into the main file hits a full disk.
  rig->ArmEnospcEverywhere();
  Status st = engine->Checkpoint();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_TRUE(engine->pager()->degraded());
  // The WAL is still authoritative: reads are unaffected.
  EXPECT_EQ(CountRows(engine.get()).value(), 300u);

  rig->FreeSpace();
  ASSERT_TRUE(CommitRows(engine.get(), 300, 100).ok());  // probe recovers
  EXPECT_FALSE(engine->pager()->degraded());
  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_EQ(CountRows(engine.get()).value(), 400u);
}

TEST_F(EnospcRecoveryTest, MidWalFlushWithSyncIsStickyUntilReopen) {
  auto rig = std::make_shared<FaultRig>();
  PagerOptions options;
  options.sync_on_commit = true;  // pipelined group commit
  options.file_wrapper = MakeWrapper(rig);
  auto engine = StorageEngine::Open(path_, options).value();
  ASSERT_TRUE(CommitRows(engine.get(), 0, 100).ok());

  // The group-commit flush hits ENOSPC. Frames of the group were already
  // published to concurrent committers, so the failure is sticky: no
  // further synced commit is acknowledged until reopen (the conservative
  // choice — durability state is undefined after a failed flush).
  rig->ArmEnospcEverywhere();
  Status st = CommitRows(engine.get(), 100, 50);
  ASSERT_FALSE(st.ok());
  rig->FreeSpace();
  // Both attempts write the same rows, so recovery lands on one of two
  // consistent states regardless of which attempt's frames survived.
  EXPECT_FALSE(CommitRows(engine.get(), 100, 50).ok());  // still poisoned

  // Reopen: every acked row is present; the unacked tail may or may not
  // be (an unacked commit can still be durable — same as a crash between
  // WAL write and acknowledgement), but never partially.
  engine->Close().ok();  // best-effort close of a poisoned pager
  engine = StorageEngine::Open(path_, PagerOptions{}).value();
  const uint64_t n = CountRows(engine.get()).value();
  ASSERT_TRUE(n == 100u || n == 150u) << n;
  ASSERT_TRUE(CommitRows(engine.get(), 150, 50).ok());  // writes resume
  EXPECT_EQ(CountRows(engine.get()).value(), n == 100u ? 150u : 200u);
}

TEST_F(EnospcRecoveryTest, ReopenAfterMidCommitEnospcIsClean) {
  auto rig = std::make_shared<FaultRig>();
  PagerOptions options;
  options.file_wrapper = MakeWrapper(rig);
  {
    auto engine = StorageEngine::Open(path_, options).value();
    ASSERT_TRUE(CommitRows(engine.get(), 0, 200).ok());
    rig->ArmEnospcEverywhere();
    ASSERT_FALSE(CommitRows(engine.get(), 200, 100).ok());
    rig->FreeSpace();  // the close's checkpoint may write freely
    engine->Close().ok();
  }
  auto engine = StorageEngine::Open(path_, PagerOptions{}).value();
  EXPECT_EQ(CountRows(engine.get()).value(), 200u);
  ASSERT_TRUE(CommitRows(engine.get(), 200, 100).ok());
  EXPECT_EQ(CountRows(engine.get()).value(), 300u);
}

TEST_F(EnospcRecoveryTest, DbServesQueriesWhileDegraded) {
  auto rig = std::make_shared<FaultRig>();
  DbOptions options;
  options.dim = 8;
  options.pager.file_wrapper = MakeWrapper(rig);
  auto db = DB::Open(path_, options).value();

  std::vector<UpsertRequest> batch;
  for (int i = 0; i < 50; ++i) {
    UpsertRequest req;
    req.asset_id = "a" + std::to_string(i);
    req.vector.assign(8, 0.f);
    req.vector[i % 8] = 1.f + 0.01f * static_cast<float>(i);
    batch.push_back(std::move(req));
  }
  ASSERT_TRUE(db->Upsert(batch).ok());

  rig->ArmEnospcEverywhere();
  Status st = db->Upsert({{"overflow", {1, 1, 1, 1, 1, 1, 1, 1}, {}}});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_TRUE(db->engine()->pager()->degraded());

  // Searches keep serving the committed state while the disk is full.
  SearchRequest req;
  req.query = {1, 0, 0, 0, 0, 0, 0, 0};
  req.k = 5;
  auto resp = db->Search(req).value();
  EXPECT_EQ(resp.items.size(), 5u);
  for (const ResultItem& item : resp.items) {
    EXPECT_NE(item.asset_id, "overflow");  // nothing torn became visible
  }

  // Space returns: writes resume and become searchable.
  rig->FreeSpace();
  ASSERT_TRUE(db->Upsert({{"back", {0, 0, 0, 0, 0, 0, 0, 2}, {}}}).ok());
  EXPECT_FALSE(db->engine()->pager()->degraded());
  req.query = {0, 0, 0, 0, 0, 0, 0, 2};
  resp = db->Search(req).value();
  ASSERT_FALSE(resp.items.empty());
  EXPECT_EQ(resp.items[0].asset_id, "back");
}

}  // namespace
}  // namespace micronn

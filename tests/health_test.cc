// The self-healing service layer: DB::Health() aggregation (verdict,
// degraded cause, quarantine, scrub cursor, integrity counters), the
// resumable budgeted ScrubStep cursor, quarantine persistence across
// reopen, and the HealthMonitor's ENOSPC auto-recovery. Complements
// scrub_stress_test (healer under concurrent traffic) and
// enospc_recovery_test (the crash matrix behind read-only mode).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "core/maintainer.h"
#include "ivf/schema.h"
#include "numerics/distance.h"
#include "storage/engine.h"
#include "storage/key_encoding.h"
#include "support/fault_injection_file.h"

namespace micronn {
namespace {

// Shared handle registry (same pattern as enospc_recovery_test): the
// wrapper hands out raw pointers so the test can fill/free the "disk"
// mid-run. Pointers stay valid while the owning DB is open.
struct FaultRig {
  std::map<std::string, FaultInjectionFile*> files;

  void ArmEnospcEverywhere() {
    FaultSchedule s;
    s.enospc_after = 1;
    for (auto& [role, f] : files) f->set_schedule(s);
  }
  void FreeSpace() {
    for (auto& [role, f] : files) f->set_schedule(FaultSchedule{});
  }
};

std::function<std::unique_ptr<FileHandle>(std::unique_ptr<FileHandle>,
                                          std::string_view)>
MakeWrapper(std::shared_ptr<FaultRig> rig) {
  return [rig](std::unique_ptr<FileHandle> base, std::string_view role) {
    auto f = std::make_unique<FaultInjectionFile>(std::move(base),
                                                 FaultSchedule{});
    rig->files[std::string(role)] = f.get();
    return std::unique_ptr<FileHandle>(std::move(f));
  };
}

class HealthTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDim = 8;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_health_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "db").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DbOptions Options() const {
    DbOptions options;
    options.dim = kDim;
    options.target_cluster_size = 32;
    return options;
  }

  // Upserts `rows` random vectors a0..a<rows-1>, recording ground truth.
  void LoadRows(DB* db, int rows, uint64_t seed = 7) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(-1.f, 1.f);
    std::vector<UpsertRequest> batch;
    for (int i = 0; i < rows; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.resize(kDim);
      for (float& v : req.vector) v = dist(rng);
      truth_[req.asset_id] = req.vector;
      batch.push_back(std::move(req));
      if (batch.size() == 64) {
        ASSERT_TRUE(db->Upsert(batch).ok());
        batch.clear();
      }
    }
    if (!batch.empty()) ASSERT_TRUE(db->Upsert(batch).ok());
  }

  static void FlipByte(const std::string& file, uint64_t offset) {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << file;
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    ASSERT_TRUE(f.good()) << file << " @" << offset;
    b = static_cast<char>(b ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
    ASSERT_TRUE(f.good());
  }

  // Lands one commit through the raw engine (a scratch-table put). A
  // DB::Upsert would not do here: it quantizes every new row into the
  // SQ8 delta partition, rewriting the sidecar tree and shadowing any
  // pinned repair window over it with newer WAL frames.
  void CommitScratch(DB* db, uint64_t n) {
    auto txn = db->engine()->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("scratch").value();
    ASSERT_TRUE(t.Put(key::U64(n), "x").ok());
    ASSERT_TRUE(db->engine()->Commit(std::move(txn)).ok());
  }

  std::filesystem::path dir_;
  std::string path_;
  std::map<std::string, std::vector<float>> truth_;
};

TEST_F(HealthTest, HealthyDbReportsHealthy) {
  auto db = DB::Open(path_, Options()).value();
  LoadRows(db.get(), 200);
  ASSERT_TRUE(db->BuildIndex().ok());

  const HealthReport h = db->Health();
  EXPECT_EQ(h.verdict, HealthVerdict::kHealthy);
  EXPECT_STREQ(h.VerdictName(), "healthy");
  EXPECT_FALSE(h.read_only);
  EXPECT_TRUE(h.read_only_cause.empty());
  EXPECT_EQ(h.read_only_for_ms, 0u);
  EXPECT_TRUE(h.strict_checksums);  // fresh databases are born v4-strict
  EXPECT_GE(h.format_version, 4u);
  EXPECT_TRUE(h.quarantined_sq8_partitions.empty());
  EXPECT_EQ(h.quarantined_attribute_rows, 0u);
  EXPECT_FALSE(h.scrub_active);
  EXPECT_EQ(h.scrub_passes_completed, 0u);
  EXPECT_EQ(h.corruptions_detected, 0u);

  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"verdict\":\"healthy\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"strict_checksums\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"quarantined_sq8_partitions\":[]"), std::string::npos)
      << json;
  EXPECT_TRUE(db->Close().ok());
}

TEST_F(HealthTest, IoStatsSnapshotAccessor) {
  auto db = DB::Open(path_, Options()).value();
  const IoStats::View before = db->io_stats_snapshot();
  LoadRows(db.get(), 64);
  const IoStats::View after = db->io_stats_snapshot();
  // A copyable snapshot with working deltas — bench/tests no longer need
  // to reach through engine()->pager() for counters.
  const IoStats::View delta = after - before;
  EXPECT_GT(delta.commits, 0u);
  EXPECT_GT(delta.frames_written, 0u);
  EXPECT_EQ(delta.corruptions_detected, 0u);
  EXPECT_TRUE(db->Close().ok());
}

// The incremental scrub cursor: a pass proceeds in bounded batches, the
// writer slot is free between batches (a commit lands mid-pass), and the
// finished pass repairs a corrupt folded page from the WAL exactly like
// the monolithic Scrub.
TEST_F(HealthTest, ScrubStepIsResumableBoundedAndRepairs) {
  auto db = DB::Open(path_, Options()).value();
  LoadRows(db.get(), 300);
  Pager* pager = db->engine()->pager();

  // Open the repair window. A guard snapshot across BuildIndex keeps its
  // final checkpoint from resetting the WAL (which would discard the
  // index's frames); re-pinning at the built state and folding then
  // leaves every index page folded-but-indexed — repairable.
  const uint64_t guard = pager->BeginSnapshot();
  ASSERT_TRUE(db->BuildIndex().ok());
  const uint64_t snap = pager->BeginSnapshot();
  pager->EndSnapshot(guard);
  CommitScratch(db.get(), 1);
  ASSERT_TRUE(db->engine()->Checkpoint().ok());
  ASSERT_GT(pager->wal_frame_count(), 0u);
  ASSERT_GT(pager->wal_backfill_watermark(), 0u);

  // Corrupt the SQ8 sidecar root (folded by the checkpoint above, frame
  // still in the WAL).
  PageId sq8_root = kInvalidPage;
  {
    auto txn = db->engine()->BeginRead().value();
    sq8_root = txn->GetTableInfo(kSq8Table).value().root;
  }
  ASSERT_NE(sq8_root, kInvalidPage);
  FlipByte(path_, static_cast<uint64_t>(sq8_root) * kPageSize + 512);
  db->DropCaches();

  // Drive the pass in 4-page batches, committing between two batches to
  // prove the writer slot is released at the step boundary.
  Result<bool> first = db->ScrubStep(4);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE(*first);  // a 300-row indexed db is far more than 4 pages
  {
    const ScrubState s = pager->scrub_state();
    EXPECT_TRUE(s.active);
    EXPECT_LE(s.next_page, 4u);
    EXPECT_LE(s.max_step_pages, 4u);
  }
  CommitScratch(db.get(), 2);  // commit interleaves mid-pass
  bool done = false;
  int steps = 1;
  while (!done) {
    Result<bool> step = db->ScrubStep(4);
    ASSERT_TRUE(step.ok()) << step.status().ToString();
    done = *step;
    ASSERT_LT(++steps, 100000);
  }

  const ScrubState s = pager->scrub_state();
  EXPECT_FALSE(s.active);
  EXPECT_EQ(s.passes_completed, 1u);
  EXPECT_GE(s.steps, 2u);
  EXPECT_LE(s.max_step_pages, 4u);
  EXPECT_GE(s.last_report.corruptions_found, 1u);
  EXPECT_GE(s.last_report.pages_repaired, 1u);
  EXPECT_TRUE(s.last_report.unrepairable.empty());

  // The repaired sidecar serves quantized plans again.
  db->DropCaches();
  SearchRequest req;
  req.query = truth_["a0"];
  req.k = 10;
  req.nprobe = 4;
  Result<SearchResponse> resp = db->Search(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->explain.partitions_quarantined, 0u);
  EXPECT_GT(resp->explain.partitions_quantized, 0u);

  pager->EndSnapshot(snap);
  EXPECT_TRUE(db->Close().ok());
}

// Satellite regression: a corrupt SQ8 sidecar page quarantines the
// partition (float fallback, flagged in EXPLAIN and in Health()); a
// reopened database re-detects the quarantine from disk; after a scrub
// repairs the page, plans are quantized again and EXPLAIN is clean.
TEST_F(HealthTest, QuarantinePersistsAcrossReopenAndScrubHeals) {
  auto db = DB::Open(path_, Options()).value();
  LoadRows(db.get(), 300);
  Pager* pager = db->engine()->pager();

  // Same guarded repair window as above: the built index's frames stay
  // folded-but-indexed in the WAL.
  const uint64_t guard = pager->BeginSnapshot();
  ASSERT_TRUE(db->BuildIndex().ok());
  const uint64_t snap = pager->BeginSnapshot();
  pager->EndSnapshot(guard);
  CommitScratch(db.get(), 1);
  ASSERT_TRUE(db->engine()->Checkpoint().ok());
  ASSERT_GT(pager->wal_frame_count(), 0u);
  ASSERT_GT(pager->wal_backfill_watermark(), 0u);

  PageId sq8_root = kInvalidPage;
  {
    auto txn = db->engine()->BeginRead().value();
    sq8_root = txn->GetTableInfo(kSq8Table).value().root;
  }
  ASSERT_NE(sq8_root, kInvalidPage);
  FlipByte(path_, static_cast<uint64_t>(sq8_root) * kPageSize + 512);
  db->DropCaches();

  SearchRequest req;
  req.query = truth_["a1"];
  req.k = 10;
  req.nprobe = 4;

  // On the live handle the damage is invisible: reads are WAL-first, and
  // the pristine frame still serves the page. Queries stay quantized and
  // clean — the corruption is latent until something reads the main file.
  {
    Result<SearchResponse> resp = db->Search(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->explain.partitions_quarantined, 0u);
  }

  // A copy of the files opened elsewhere models a restart that lost the
  // frame index for the folded prefix: its reads hit the main file, so
  // the first probe of the damaged partition detects the corruption,
  // quarantines the partition, and still answers correctly via the float
  // fallback. Health() mirrors the quarantine as degraded-serving.
  const std::string copy = (dir_ / "copy").string();
  for (const char* suffix : {"", "-wal", "-sum"}) {
    if (std::filesystem::exists(path_ + suffix)) {
      std::filesystem::copy_file(path_ + suffix, copy + suffix);
    }
  }
  {
    auto db2 = DB::Open(copy, Options()).value();
    db2->DropCaches();
    ASSERT_TRUE(db2->Health().quarantined_sq8_partitions.empty());
    Result<SearchResponse> resp = db2->Search(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_GT(resp->explain.partitions_quarantined, 0u);
    for (const ResultItem& item : resp->items) {
      auto it = truth_.find(item.asset_id);
      ASSERT_NE(it, truth_.end()) << "fabricated id " << item.asset_id;
      EXPECT_NEAR(item.distance,
                  Distance(Options().metric, req.query.data(),
                           it->second.data(), kDim),
                  1e-3f);
    }
    const HealthReport h = db2->Health();
    EXPECT_EQ(h.verdict, HealthVerdict::kDegradedServing);
    EXPECT_FALSE(h.quarantined_sq8_partitions.empty());
    EXPECT_GT(h.corruptions_detected, 0u);
    db2->Close().ok();  // best-effort: the copy is corrupt by design
  }

  // Scrub the original (its WAL still indexes the pristine frame),
  // then verify plans return to quantized with a clean EXPLAIN.
  Result<ScrubReport> scrub = db->Scrub();
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  EXPECT_GE(scrub->pages_repaired, 1u);
  EXPECT_TRUE(scrub->unrepairable.empty());
  db->DropCaches();
  {
    Result<SearchResponse> resp = db->Search(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->explain.partitions_quarantined, 0u);
    EXPECT_GT(resp->explain.partitions_quantized, 0u);
    const HealthReport h = db->Health();
    EXPECT_EQ(h.verdict, HealthVerdict::kHealthy);
    EXPECT_TRUE(h.quarantined_sq8_partitions.empty());
  }

  pager->EndSnapshot(snap);
  EXPECT_TRUE(db->Close().ok());
}

// ENOSPC: Health() reports read-only with the cause, and the background
// HealthMonitor alone (no write traffic) exits degraded mode once space
// returns, through the pager's rate-limited probe.
TEST_F(HealthTest, EnospcReadOnlyHealthAndMonitorAutoRecovery) {
  auto rig = std::make_shared<FaultRig>();
  DbOptions options = Options();
  options.pager.file_wrapper = MakeWrapper(rig);
  auto db = DB::Open(path_, options).value();
  LoadRows(db.get(), 64);

  rig->ArmEnospcEverywhere();
  {
    std::vector<UpsertRequest> one(1);
    one[0].asset_id = "spill";
    one[0].vector.assign(kDim, 0.5f);
    Status st = db->Upsert(one);
    EXPECT_FALSE(st.ok());
  }
  ASSERT_TRUE(db->engine()->pager()->degraded());
  {
    const HealthReport h = db->Health();
    EXPECT_EQ(h.verdict, HealthVerdict::kReadOnly);
    EXPECT_TRUE(h.read_only);
    EXPECT_FALSE(h.read_only_cause.empty());
    const std::string json = h.ToJson();
    EXPECT_NE(json.find("\"verdict\":\"read_only\""), std::string::npos)
        << json;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(db->Health().read_only_for_ms, 0u);

  // Reads keep serving while degraded.
  EXPECT_EQ(db->VectorCount().value(), 64u);

  // Start the monitor while the disk is still full: its first probe
  // fails and arms the backoff; freeing space lets a later probe clear
  // degraded mode with no write traffic at all.
  HealthMonitor::Options mon;
  mon.interval = std::chrono::milliseconds(2);
  HealthMonitor monitor(db.get(), mon);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  rig->FreeSpace();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (db->engine()->pager()->degraded() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_FALSE(db->engine()->pager()->degraded());
  EXPECT_GE(monitor.enospc_recoveries(), 1u);
  EXPECT_EQ(db->Health().verdict, HealthVerdict::kHealthy);
  monitor.Stop();

  // Writes work again.
  std::vector<UpsertRequest> one(1);
  one[0].asset_id = "post";
  one[0].vector.assign(kDim, 0.25f);
  EXPECT_TRUE(db->Upsert(one).ok());
  EXPECT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace micronn

// Deeper hybrid-search coverage: plan correctness and agreement across
// complex predicate trees, typed columns, FTS combinations, and recall
// behaviour at selectivity extremes (the Fig. 7 phenomenon in unit-test
// form).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/db.h"
#include "datagen/dataset.h"
#include "ivf/search.h"

namespace micronn {
namespace {

class HybridTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDim = 16;
  static constexpr size_t kN = 4000;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_hybrid_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    ds_ = GenerateDataset({"h", kDim, Metric::kL2, kN, 16, 24, 0.2f, 55});
    DbOptions options;
    options.dim = kDim;
    options.target_cluster_size = 50;
    options.default_nprobe = 4;
    options.fts_columns = {"tags"};
    db_ = DB::Open(dir_ / "db.mnn", options).value();
    std::vector<UpsertRequest> batch;
    for (size_t i = 0; i < kN; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.assign(ds_.row(i), ds_.row(i) + kDim);
      req.attributes["year"] =
          AttributeValue::Int(2000 + static_cast<int64_t>(i % 25));
      req.attributes["score"] =
          AttributeValue::Double(static_cast<double>(i % 100) / 100.0);
      req.attributes["city"] = AttributeValue::String(
          i % 500 == 0 ? "katmandu" : (i % 2 ? "seattle" : "nyc"));
      std::string tags = i % 2 ? "cat indoor" : "dog outdoor";
      if (i % 16 == 0) tags += " special";
      req.attributes["tags"] = AttributeValue::String(tags);
      batch.push_back(std::move(req));
    }
    EXPECT_TRUE(db_->Upsert(batch).ok());
    EXPECT_TRUE(db_->BuildIndex().ok());
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  // Runs `filter` through exact search (truth), forced pre-filter, and
  // forced post-filter at max nprobe; returns the three result lists.
  struct PlanComparison {
    std::vector<uint64_t> exact, pre, post_full_probe;
  };
  PlanComparison Compare(const Predicate& filter, uint32_t k) {
    PlanComparison out;
    SearchRequest req;
    req.query.assign(ds_.query(0), ds_.query(0) + kDim);
    req.k = k;
    req.nprobe = 1000;  // every partition: post-filter becomes exact too
    req.filter = filter;

    // Bind each response before iterating: ranging directly over
    // `Search(...).value().items` dangles in C++20 (the temporary Result
    // dies at the end of the range-init; only C++23 P2718 extends it).
    SearchRequest exact = req;
    exact.exact = true;
    const SearchResponse exact_resp = db_->Search(exact).value();
    for (const auto& item : exact_resp.items) {
      out.exact.push_back(item.vid);
    }
    SearchRequest pre = req;
    pre.plan = PlanOverride::kForcePreFilter;
    const SearchResponse pre_resp = db_->Search(pre).value();
    for (const auto& item : pre_resp.items) {
      out.pre.push_back(item.vid);
    }
    SearchRequest post = req;
    post.plan = PlanOverride::kForcePostFilter;
    const SearchResponse post_resp = db_->Search(post).value();
    for (const auto& item : post_resp.items) {
      out.post_full_probe.push_back(item.vid);
    }
    return out;
  }

  std::filesystem::path dir_;
  Dataset ds_;
  std::unique_ptr<DB> db_;
};

TEST_F(HybridTest, AllPlansAgreeAtFullProbe) {
  // With every partition probed, pre-filter, post-filter, and exact search
  // must return identical results for any filter.
  const Predicate filters[] = {
      Predicate::Compare("year", CompareOp::kGe, AttributeValue::Int(2020)),
      Predicate::Compare("score", CompareOp::kLt,
                         AttributeValue::Double(0.25)),
      Predicate::Match("tags", "special"),
      Predicate::And(
          {Predicate::Compare("city", CompareOp::kEq,
                              AttributeValue::String("seattle")),
           Predicate::Compare("year", CompareOp::kLt,
                              AttributeValue::Int(2010))}),
      Predicate::Or(
          {Predicate::Compare("city", CompareOp::kEq,
                              AttributeValue::String("katmandu")),
           Predicate::Match("tags", "special")}),
  };
  for (const Predicate& filter : filters) {
    const auto cmp = Compare(filter, 20);
    EXPECT_EQ(cmp.pre, cmp.exact) << filter.ToString();
    EXPECT_EQ(cmp.post_full_probe, cmp.exact) << filter.ToString();
  }
}

TEST_F(HybridTest, PreFilterRecallIsAlwaysFull) {
  // Pre-filtering is exact over the qualifying subset regardless of
  // nprobe (the paper's "guarantees 100% recall").
  SearchRequest req;
  req.query.assign(ds_.query(1), ds_.query(1) + kDim);
  req.k = 10;
  req.nprobe = 1;  // irrelevant for pre-filter
  req.filter = Predicate::Compare("city", CompareOp::kEq,
                                  AttributeValue::String("katmandu"));
  req.plan = PlanOverride::kForcePreFilter;
  auto pre = db_->Search(req).value();
  SearchRequest exact = req;
  exact.exact = true;
  exact.plan = PlanOverride::kAuto;
  auto truth = db_->Search(exact).value();
  ASSERT_EQ(pre.items.size(), truth.items.size());
  for (size_t i = 0; i < pre.items.size(); ++i) {
    EXPECT_EQ(pre.items[i].vid, truth.items[i].vid);
  }
}

TEST_F(HybridTest, PostFilterRecallDegradesOnSelectiveFilters) {
  // At small nprobe, a highly selective filter leaves post-filtering with
  // few qualifying candidates — the Fig. 7 recall collapse.
  SearchRequest req;
  req.query.assign(ds_.query(2), ds_.query(2) + kDim);
  req.k = 8;  // katmandu has kN/500 = 8 rows
  req.nprobe = 1;
  req.filter = Predicate::Compare("city", CompareOp::kEq,
                                  AttributeValue::String("katmandu"));
  req.plan = PlanOverride::kForcePostFilter;
  auto post = db_->Search(req).value();
  req.plan = PlanOverride::kForcePreFilter;
  auto pre = db_->Search(req).value();
  EXPECT_EQ(pre.items.size(), 8u);
  EXPECT_LT(post.items.size(), pre.items.size());
}

TEST_F(HybridTest, DoubleColumnRangeFilter) {
  SearchRequest req;
  req.query.assign(ds_.query(3), ds_.query(3) + kDim);
  req.k = 50;
  req.nprobe = 1000;
  req.filter = Predicate::And(
      {Predicate::Compare("score", CompareOp::kGe,
                          AttributeValue::Double(0.40)),
       Predicate::Compare("score", CompareOp::kLt,
                          AttributeValue::Double(0.45))});
  auto resp = db_->Search(req).value();
  EXPECT_FALSE(resp.items.empty());
  for (const auto& item : resp.items) {
    const uint64_t row = item.vid - 1;
    const double score = static_cast<double>(row % 100) / 100.0;
    EXPECT_GE(score, 0.40);
    EXPECT_LT(score, 0.45);
  }
}

TEST_F(HybridTest, NotEqualFilter) {
  const auto cmp = Compare(
      Predicate::Compare("city", CompareOp::kNe,
                         AttributeValue::String("seattle")),
      25);
  EXPECT_EQ(cmp.pre, cmp.exact);
  // != seattle should still yield plenty of rows (nyc + katmandu).
  EXPECT_EQ(cmp.exact.size(), 25u);
}

TEST_F(HybridTest, FilterMatchingNothing) {
  SearchRequest req;
  req.query.assign(ds_.query(4), ds_.query(4) + kDim);
  req.k = 5;
  req.filter = Predicate::Compare("year", CompareOp::kGt,
                                  AttributeValue::Int(9999));
  for (const PlanOverride plan :
       {PlanOverride::kForcePreFilter, PlanOverride::kForcePostFilter,
        PlanOverride::kAuto}) {
    req.plan = plan;
    auto resp = db_->Search(req).value();
    EXPECT_TRUE(resp.items.empty());
  }
}

TEST_F(HybridTest, TypeMismatchedFilterMatchesNothing) {
  // Comparing a string column against an int matches no rows (and is not
  // an execution error).
  SearchRequest req;
  req.query.assign(ds_.query(5), ds_.query(5) + kDim);
  req.k = 5;
  req.filter =
      Predicate::Compare("city", CompareOp::kEq, AttributeValue::Int(7));
  req.plan = PlanOverride::kForcePreFilter;
  auto resp = db_->Search(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->items.empty());
}

TEST_F(HybridTest, OptimizerReportsEstimates) {
  SearchRequest req;
  req.query.assign(ds_.query(6), ds_.query(6) + kDim);
  req.k = 5;
  req.filter = Predicate::Compare("city", CompareOp::kEq,
                                  AttributeValue::String("katmandu"));
  auto resp = db_->Search(req).value();
  // katmandu qualifies 8/4000 = 0.2%; F_IVF = 4 * 50 / 4000 = 5%.
  EXPECT_EQ(resp.plan, QueryPlan::kPreFilter);
  EXPECT_LT(resp.decision.filter_selectivity, 0.02);
  EXPECT_NEAR(resp.decision.ivf_selectivity, 0.05, 0.001);
}

TEST_F(HybridTest, ExplainSurfacesPlanAndCounters) {
  SearchRequest req;
  req.query.assign(ds_.query(6), ds_.query(6) + kDim);
  req.k = 5;
  req.filter = Predicate::Compare("city", CompareOp::kEq,
                                  AttributeValue::String("katmandu"));
  auto resp = db_->Search(req).value();
  // katmandu is selective: optimizer picks pre-filter, explain agrees.
  EXPECT_EQ(resp.explain.plan, QueryPlan::kPreFilter);
  EXPECT_TRUE(resp.explain.optimized);
  EXPECT_EQ(resp.explain.decision.filter_selectivity,
            resp.decision.filter_selectivity);
  EXPECT_EQ(resp.explain.candidates, kN / 500);
  EXPECT_EQ(resp.explain.partitions_scanned, resp.partitions_scanned);
  EXPECT_EQ(resp.explain.rows_scanned, resp.rows_scanned);
  EXPECT_EQ(resp.explain.group_size, 1u);
  EXPECT_FALSE(resp.explain.shared_scan);
  const std::string text = resp.explain.ToString();
  EXPECT_NE(text.find("plan=pre-filter"), std::string::npos) << text;
  EXPECT_NE(text.find("candidates="), std::string::npos) << text;
  EXPECT_NE(text.find("est["), std::string::npos) << text;

  // A plain unfiltered query reports its true strategy (not the
  // misleading "post-filter" of the old two-value enum).
  SearchRequest plain;
  plain.query.assign(ds_.query(6), ds_.query(6) + kDim);
  plain.k = 5;
  auto plain_resp = db_->Search(plain).value();
  EXPECT_EQ(plain_resp.plan, QueryPlan::kUnfiltered);
  EXPECT_FALSE(plain_resp.explain.optimized);
  EXPECT_EQ(plain_resp.explain.nprobe, 4u);  // default_nprobe
  EXPECT_EQ(plain_resp.explain.probe_pairs, 4u);

  SearchRequest exact = plain;
  exact.exact = true;
  auto exact_resp = db_->Search(exact).value();
  EXPECT_EQ(exact_resp.plan, QueryPlan::kExact);
  EXPECT_EQ(exact_resp.explain.rows_scanned, kN);
}

TEST_F(HybridTest, BatchOfHybridQueriesMatchesSingle) {
  // A batch mixing every hybrid shape — auto plans that resolve to pre-
  // AND post-filtering, forced plans, FTS filters, plus an unfiltered
  // query — returns results identical to per-query Search.
  std::vector<SearchRequest> requests;
  auto base = [&](size_t qi) {
    SearchRequest req;
    req.query.assign(ds_.query(qi), ds_.query(qi) + kDim);
    req.k = 20;
    req.nprobe = 4;
    return req;
  };
  SearchRequest r0 = base(0);  // auto -> pre-filter (selective)
  r0.filter = Predicate::Compare("city", CompareOp::kEq,
                                 AttributeValue::String("katmandu"));
  SearchRequest r1 = base(1);  // auto -> post-filter (broad)
  r1.filter = Predicate::Compare("city", CompareOp::kEq,
                                 AttributeValue::String("seattle"));
  SearchRequest r2 = base(2);  // FTS MATCH filter
  r2.filter = Predicate::Match("tags", "special");
  SearchRequest r3 = base(3);  // forced post-filter on a selective pred
  r3.filter = Predicate::Compare("city", CompareOp::kEq,
                                 AttributeValue::String("katmandu"));
  r3.plan = PlanOverride::kForcePostFilter;
  SearchRequest r4 = base(4);  // unfiltered rider
  SearchRequest r5 = base(5);  // predicate tree
  r5.filter = Predicate::And(
      {Predicate::Compare("year", CompareOp::kGe, AttributeValue::Int(2010)),
       Predicate::Compare("score", CompareOp::kLt,
                          AttributeValue::Double(0.5))});
  requests = {r0, r1, r2, r3, r4, r5};

  auto batched = db_->BatchSearch(requests).value();
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t q = 0; q < requests.size(); ++q) {
    const auto single = db_->Search(requests[q]).value();
    ASSERT_EQ(batched[q].items.size(), single.items.size()) << q;
    for (size_t i = 0; i < single.items.size(); ++i) {
      EXPECT_EQ(batched[q].items[i].vid, single.items[i].vid)
          << "q=" << q << " i=" << i;
      EXPECT_EQ(batched[q].items[i].distance, single.items[i].distance)
          << "q=" << q << " i=" << i;
    }
    EXPECT_EQ(batched[q].plan, single.plan) << q;
    EXPECT_EQ(batched[q].partitions_scanned, single.partitions_scanned) << q;
    EXPECT_EQ(batched[q].rows_scanned, single.rows_scanned) << q;
    EXPECT_EQ(batched[q].rows_filtered, single.rows_filtered) << q;
  }
  EXPECT_EQ(batched[0].plan, QueryPlan::kPreFilter);
  EXPECT_EQ(batched[1].plan, QueryPlan::kPostFilter);
  EXPECT_EQ(batched[3].plan, QueryPlan::kPostFilter);
  EXPECT_EQ(batched[4].plan, QueryPlan::kUnfiltered);
}

TEST_F(HybridTest, HybridSearchAfterMaintain) {
  // Filters keep working for vectors that moved from delta to partitions.
  AttributeRecord attrs;
  attrs["city"] = AttributeValue::String("katmandu");
  attrs["year"] = AttributeValue::Int(2030);
  std::vector<UpsertRequest> fresh;
  for (int i = 0; i < 20; ++i) {
    UpsertRequest req;
    req.asset_id = "fresh" + std::to_string(i);
    req.vector.assign(ds_.query(7), ds_.query(7) + kDim);
    req.vector[0] += 0.001f * static_cast<float>(i);
    req.attributes = attrs;
    fresh.push_back(std::move(req));
  }
  ASSERT_TRUE(db_->Upsert(fresh).ok());
  ASSERT_TRUE(db_->Maintain().ok());
  SearchRequest req;
  req.query.assign(ds_.query(7), ds_.query(7) + kDim);
  req.k = 20;
  req.nprobe = 8;
  req.filter = Predicate::Compare("year", CompareOp::kGe,
                                  AttributeValue::Int(2030));
  auto resp = db_->Search(req).value();
  EXPECT_EQ(resp.items.size(), 20u);
  for (const auto& item : resp.items) {
    EXPECT_TRUE(item.asset_id.starts_with("fresh"));
  }
}

}  // namespace
}  // namespace micronn

// The batched read path: backend selection (pread / io_uring / forced
// fallback), FileHandle::ReadBatch correctness on both backends,
// Pager::ReadPages / PrefetchPages semantics and counters, fault injection
// through PagerOptions::file_wrapper, and end-to-end cold-cache parity —
// every backend x prefetch depth must return bit-identical search results
// and per-query counters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/db.h"
#include "storage/file.h"
#include "storage/io_backend.h"
#include "storage/pager.h"
#include "support/fault_injection_file.h"

namespace micronn {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    OverrideIoUringAvailabilityForTest(std::nullopt);
    ::unsetenv("MICRONN_IO_BACKEND");
    std::filesystem::remove_all(dir_);
  }
  std::string Path(const std::string& name) const { return dir_ / name; }
  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

TEST(IoBackendNameTest, ParseRoundTrip) {
  for (const IoBackend b :
       {IoBackend::kAuto, IoBackend::kPread, IoBackend::kUring}) {
    const auto parsed = ParseIoBackend(IoBackendName(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(ParseIoBackend("aio").has_value());
  EXPECT_FALSE(ParseIoBackend("").has_value());
}

using IoBackendTest = TempDir;

TEST_F(IoBackendTest, ResolveNeverReturnsAuto) {
  for (const IoBackend b :
       {IoBackend::kAuto, IoBackend::kPread, IoBackend::kUring}) {
    const IoBackend r = ResolveIoBackend(b);
    EXPECT_NE(r, IoBackend::kAuto);
  }
}

TEST_F(IoBackendTest, UringRequestFallsBackWhenUnavailable) {
  OverrideIoUringAvailabilityForTest(false);
  EXPECT_EQ(ResolveIoBackend(IoBackend::kUring), IoBackend::kPread);
  EXPECT_EQ(ResolveIoBackend(IoBackend::kAuto), IoBackend::kPread);
  IoBackend effective = IoBackend::kAuto;
  auto file = OpenFile(Path("f"), IoBackend::kUring, &effective);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(effective, IoBackend::kPread);
}

TEST_F(IoBackendTest, EnvOverrideWins) {
  OverrideIoUringAvailabilityForTest(true);
  ::setenv("MICRONN_IO_BACKEND", "pread", 1);
  EXPECT_EQ(ResolveIoBackend(IoBackend::kUring), IoBackend::kPread);
  EXPECT_EQ(ResolveIoBackend(IoBackend::kAuto), IoBackend::kPread);
  ::unsetenv("MICRONN_IO_BACKEND");
}

TEST_F(IoBackendTest, PagerReportsEffectiveBackend) {
  OverrideIoUringAvailabilityForTest(false);
  PagerOptions opts;
  opts.io_backend = IoBackend::kUring;
  auto pager = Pager::Open(Path("db"), opts).value();
  EXPECT_EQ(pager->io_backend(), IoBackend::kPread);
}

// ---------------------------------------------------------------------------
// ReadBatch correctness (both backends)
// ---------------------------------------------------------------------------

void FillFile(FileHandle* file, size_t n_blocks) {
  std::string block(512, '\0');
  for (size_t b = 0; b < n_blocks; ++b) {
    for (size_t i = 0; i < block.size(); ++i) {
      block[i] = static_cast<char>((b * 31 + i) & 0xff);
    }
    ASSERT_TRUE(file->WriteAt(b * block.size(), block.data(), block.size())
                    .ok());
  }
}

void CheckBatchAgainstReadAt(FileHandle* file, size_t n_blocks) {
  Rng rng(1234);
  for (int round = 0; round < 8; ++round) {
    const size_t n_ops = 1 + rng.Uniform(200);
    std::vector<std::string> expect(n_ops);
    std::vector<std::string> got(n_ops);
    std::vector<ReadOp> ops(n_ops);
    for (size_t i = 0; i < n_ops; ++i) {
      const uint64_t off = rng.Uniform(n_blocks * 512 - 256);
      const size_t len = 1 + rng.Uniform(256);
      expect[i].resize(len);
      ASSERT_TRUE(file->ReadAt(off, expect[i].data(), len).ok());
      got[i].resize(len);
      ops[i] = ReadOp{off, got[i].data(), len, Status::OK()};
    }
    ASSERT_TRUE(file->ReadBatch(ops.data(), ops.size()).ok());
    for (size_t i = 0; i < n_ops; ++i) {
      ASSERT_TRUE(ops[i].status.ok()) << ops[i].status.ToString();
      EXPECT_EQ(got[i], expect[i]) << "op " << i << " round " << round;
    }
  }
}

TEST_F(IoBackendTest, PosixReadBatchMatchesReadAt) {
  auto file = OpenFile(Path("f"), IoBackend::kPread).value();
  FillFile(file.get(), 64);
  CheckBatchAgainstReadAt(file.get(), 64);
}

TEST_F(IoBackendTest, UringReadBatchMatchesReadAt) {
  if (!IoUringAvailable()) {
    GTEST_SKIP() << "io_uring not available in this build/kernel";
  }
  IoBackend effective = IoBackend::kAuto;
  auto file = OpenFile(Path("f"), IoBackend::kUring, &effective).value();
  ASSERT_EQ(effective, IoBackend::kUring);
  FillFile(file.get(), 64);
  CheckBatchAgainstReadAt(file.get(), 64);
}

TEST_F(IoBackendTest, ReadBatchReportsPerOpFailures) {
  for (const IoBackend backend : {IoBackend::kPread, IoBackend::kUring}) {
    if (backend == IoBackend::kUring && !IoUringAvailable()) continue;
    auto file = OpenFile(Path("f_" + std::string(IoBackendName(backend))),
                         backend)
                    .value();
    ASSERT_TRUE(file->WriteAt(0, "0123456789", 10).ok());
    char a[4], b[4];
    ReadOp ops[2] = {
        {2, a, 4, Status::OK()},
        {1 << 20, b, 4, Status::OK()},  // far past EOF
    };
    ASSERT_TRUE(file->ReadBatch(ops, 2).ok());
    EXPECT_TRUE(ops[0].status.ok());
    EXPECT_EQ(std::string(a, 4), "2345");
    EXPECT_FALSE(ops[1].status.ok()) << IoBackendName(backend);
  }
}

// ---------------------------------------------------------------------------
// SubmitRead / ReapCompletions: the true async API (uring) and its
// blocking emulation (pread). Identical results either way.
// ---------------------------------------------------------------------------

void CheckSubmitReapAgainstReadAt(FileHandle* file, size_t n_blocks) {
  Rng rng(4321);
  for (int round = 0; round < 8; ++round) {
    const size_t n_ops = 1 + rng.Uniform(300);  // > ring size some rounds
    std::vector<std::string> expect(n_ops);
    std::vector<std::string> got(n_ops);
    std::vector<ReadOp> ops(n_ops);
    for (size_t i = 0; i < n_ops; ++i) {
      const uint64_t off = rng.Uniform(n_blocks * 512 - 256);
      const size_t len = 1 + rng.Uniform(256);
      expect[i].resize(len);
      ASSERT_TRUE(file->ReadAt(off, expect[i].data(), len).ok());
      got[i].resize(len);
      ops[i] = ReadOp{off, got[i].data(), len, Status::OK()};
    }
    IoTicket ticket;
    ASSERT_TRUE(file->SubmitRead(ops.data(), ops.size(), &ticket).ok());
    ASSERT_TRUE(file->ReapCompletions(&ticket, /*wait=*/true).ok());
    EXPECT_TRUE(ticket.done());
    for (size_t i = 0; i < n_ops; ++i) {
      ASSERT_TRUE(ops[i].status.ok()) << ops[i].status.ToString();
      EXPECT_EQ(got[i], expect[i]) << "op " << i << " round " << round;
    }
  }
}

TEST_F(IoBackendTest, PosixSubmitReapMatchesReadAt) {
  auto file = OpenFile(Path("f"), IoBackend::kPread).value();
  FillFile(file.get(), 64);
  CheckSubmitReapAgainstReadAt(file.get(), 64);
}

TEST_F(IoBackendTest, UringSubmitReapMatchesReadAt) {
  if (!IoUringAvailable()) {
    GTEST_SKIP() << "io_uring not available in this build/kernel";
  }
  IoBackend effective = IoBackend::kAuto;
  auto file = OpenFile(Path("f"), IoBackend::kUring, &effective).value();
  ASSERT_EQ(effective, IoBackend::kUring);
  FillFile(file.get(), 64);
  CheckSubmitReapAgainstReadAt(file.get(), 64);
}

TEST_F(IoBackendTest, OutOfOrderTicketReap) {
  // Two in-flight tickets, reaped in reverse submission order. On uring
  // the second reap drains the first ticket's CQEs too (cross-ticket
  // harvesting frees their ring slots); the first ticket's own reap then
  // just observes completion. Both batches together oversubscribe the
  // ring, so slot recycling under pressure is exercised as well.
  for (const IoBackend backend : {IoBackend::kPread, IoBackend::kUring}) {
    if (backend == IoBackend::kUring && !IoUringAvailable()) continue;
    SCOPED_TRACE(IoBackendName(backend));
    auto file = OpenFile(Path("f_" + std::string(IoBackendName(backend))),
                         backend)
                    .value();
    FillFile(file.get(), 64);
    constexpr size_t kOps = 100;  // 2 x 100 > the 128-entry ring
    std::vector<std::string> got_a(kOps), got_b(kOps);
    std::vector<ReadOp> ops_a(kOps), ops_b(kOps);
    for (size_t i = 0; i < kOps; ++i) {
      got_a[i].resize(512);
      got_b[i].resize(512);
      ops_a[i] = ReadOp{(i % 64) * 512, got_a[i].data(), 512, Status::OK()};
      ops_b[i] =
          ReadOp{((i + 17) % 64) * 512, got_b[i].data(), 512, Status::OK()};
    }
    IoTicket ta, tb;
    ASSERT_TRUE(file->SubmitRead(ops_a.data(), kOps, &ta).ok());
    ASSERT_TRUE(file->SubmitRead(ops_b.data(), kOps, &tb).ok());
    ASSERT_TRUE(file->ReapCompletions(&tb, /*wait=*/true).ok());
    ASSERT_TRUE(file->ReapCompletions(&ta, /*wait=*/true).ok());
    EXPECT_TRUE(ta.done());
    EXPECT_TRUE(tb.done());
    for (size_t i = 0; i < kOps; ++i) {
      ASSERT_TRUE(ops_a[i].status.ok());
      ASSERT_TRUE(ops_b[i].status.ok());
      std::string expect(512, '\0');
      ASSERT_TRUE(
          file->ReadAt(ops_a[i].offset, expect.data(), expect.size()).ok());
      EXPECT_EQ(got_a[i], expect);
      ASSERT_TRUE(
          file->ReadAt(ops_b[i].offset, expect.data(), expect.size()).ok());
      EXPECT_EQ(got_b[i], expect);
    }
  }
}

TEST_F(IoBackendTest, NonBlockingReapEventuallyCompletes) {
  for (const IoBackend backend : {IoBackend::kPread, IoBackend::kUring}) {
    if (backend == IoBackend::kUring && !IoUringAvailable()) continue;
    SCOPED_TRACE(IoBackendName(backend));
    auto file = OpenFile(Path("f_" + std::string(IoBackendName(backend))),
                         backend)
                    .value();
    FillFile(file.get(), 64);
    constexpr size_t kOps = 50;
    std::vector<std::string> got(kOps);
    std::vector<ReadOp> ops(kOps);
    for (size_t i = 0; i < kOps; ++i) {
      got[i].resize(512);
      ops[i] = ReadOp{(i % 64) * 512, got[i].data(), 512, Status::OK()};
    }
    IoTicket ticket;
    ASSERT_TRUE(file->SubmitRead(ops.data(), kOps, &ticket).ok());
    // wait=false never blocks; page-cache reads complete almost
    // immediately, so polling converges fast.
    for (int spin = 0; spin < 1000000 && !ticket.done(); ++spin) {
      ASSERT_TRUE(file->ReapCompletions(&ticket, /*wait=*/false).ok());
    }
    // A final blocking reap settles any stragglers deterministically.
    ASSERT_TRUE(file->ReapCompletions(&ticket, /*wait=*/true).ok());
    EXPECT_TRUE(ticket.done());
    for (size_t i = 0; i < kOps; ++i) {
      ASSERT_TRUE(ops[i].status.ok());
    }
  }
}

TEST_F(IoBackendTest, SubmitReapReportsMidGroupFailures) {
  // One op in the middle of a larger-than-the-ring group fails (far past
  // EOF); its status is reported at reap time and every sibling op still
  // completes with correct data.
  for (const IoBackend backend : {IoBackend::kPread, IoBackend::kUring}) {
    if (backend == IoBackend::kUring && !IoUringAvailable()) continue;
    SCOPED_TRACE(IoBackendName(backend));
    auto file = OpenFile(Path("f_" + std::string(IoBackendName(backend))),
                         backend)
                    .value();
    FillFile(file.get(), 64);
    constexpr size_t kOps = 300;
    constexpr size_t kBadOp = 150;
    std::vector<std::string> got(kOps);
    std::vector<ReadOp> ops(kOps);
    for (size_t i = 0; i < kOps; ++i) {
      got[i].resize(64);
      ops[i] = ReadOp{(i % 64) * 512, got[i].data(), 64, Status::OK()};
    }
    ops[kBadOp].offset = 1ull << 30;  // far past EOF
    IoTicket ticket;
    ASSERT_TRUE(file->SubmitRead(ops.data(), kOps, &ticket).ok());
    ASSERT_TRUE(file->ReapCompletions(&ticket, /*wait=*/true).ok());
    for (size_t i = 0; i < kOps; ++i) {
      if (i == kBadOp) {
        EXPECT_FALSE(ops[i].status.ok());
        continue;
      }
      ASSERT_TRUE(ops[i].status.ok()) << "op " << i;
      std::string expect(64, '\0');
      ASSERT_TRUE(
          file->ReadAt(ops[i].offset, expect.data(), expect.size()).ok());
      EXPECT_EQ(got[i], expect) << "op " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Async fault matrix: faults injected by the decorator fire at reap time
// (the pread emulation defers the whole batch to ReapCompletions).
// ---------------------------------------------------------------------------

TEST_F(IoBackendTest, ShortReadAtReapIsReported) {
  auto base = OpenFile(Path("f"), IoBackend::kPread).value();
  FillFile(base.get(), 8);
  FaultSchedule s;
  s.short_read_at = 2;
  FaultInjectionFile file(std::move(base), s);
  char a[16], b[16], c[16];
  ReadOp ops[3] = {
      {0, a, 16, Status::OK()},
      {512, b, 16, Status::OK()},
      {1024, c, 16, Status::OK()},
  };
  IoTicket ticket;
  ASSERT_TRUE(file.SubmitRead(ops, 3, &ticket).ok());
  EXPECT_EQ(file.counters().reads, 0u);  // nothing read before the reap
  ASSERT_TRUE(file.ReapCompletions(&ticket, /*wait=*/true).ok());
  EXPECT_TRUE(ops[0].status.ok());
  EXPECT_FALSE(ops[1].status.ok());  // the injected short read
  EXPECT_TRUE(ops[2].status.ok());
}

TEST_F(IoBackendTest, EintrDuringReapIsTransparent) {
  auto base = OpenFile(Path("f"), IoBackend::kPread).value();
  FillFile(base.get(), 8);
  FaultSchedule s;
  s.eintr_every = 1;  // every read interrupted once and restarted
  FaultInjectionFile file(std::move(base), s);
  std::vector<std::string> got(16);
  std::vector<ReadOp> ops(16);
  for (size_t i = 0; i < ops.size(); ++i) {
    got[i].resize(64);
    ops[i] = ReadOp{(i % 8) * 512, got[i].data(), 64, Status::OK()};
  }
  IoTicket ticket;
  ASSERT_TRUE(file.SubmitRead(ops.data(), ops.size(), &ticket).ok());
  ASSERT_TRUE(file.ReapCompletions(&ticket, /*wait=*/true).ok());
  for (size_t i = 0; i < ops.size(); ++i) {
    ASSERT_TRUE(ops[i].status.ok());
    std::string expect(64, '\0');
    ASSERT_TRUE(
        file.ReadAt(ops[i].offset, expect.data(), expect.size()).ok());
    EXPECT_EQ(got[i], expect);
  }
}

// ---------------------------------------------------------------------------
// WriteBatch: vectored writes, coalescing, and syscall accounting
// ---------------------------------------------------------------------------

TEST_F(IoBackendTest, WriteBatchMatchesWriteAt) {
  Rng rng(555);
  for (const IoBackend backend : {IoBackend::kPread, IoBackend::kUring}) {
    if (backend == IoBackend::kUring && !IoUringAvailable()) continue;
    SCOPED_TRACE(IoBackendName(backend));
    const std::string tag(IoBackendName(backend));
    auto batched = OpenFile(Path("batched_" + tag), backend).value();
    auto looped = OpenFile(Path("looped_" + tag), backend).value();
    // A mix of contiguous runs and scattered ops, applied in one
    // WriteBatch vs. a WriteAt loop: files must end up byte-identical.
    std::vector<std::string> payloads;
    payloads.reserve(100);  // ops keep data() pointers; SSO strings move
                            // with the vector on reallocation
    std::vector<WriteOp> ops;
    uint64_t off = 0;
    for (int i = 0; i < 100; ++i) {
      if (rng.Uniform(4) == 0) off += 512 + rng.Uniform(2048);  // gap
      const size_t len = 1 + rng.Uniform(700);
      std::string p(len, '\0');
      for (auto& ch : p) ch = static_cast<char>(rng.Uniform(256));
      payloads.push_back(std::move(p));
      ops.push_back(WriteOp{off, payloads.back().data(),
                            payloads.back().size(), Status::OK()});
      off += len;
    }
    ASSERT_TRUE(batched->WriteBatch(ops.data(), ops.size()).ok());
    for (const WriteOp& op : ops) {
      ASSERT_TRUE(op.status.ok()) << op.status.ToString();
      ASSERT_TRUE(looped->WriteAt(op.offset, op.buf, op.len).ok());
    }
    ASSERT_EQ(batched->size(), looped->size());
    std::string a(batched->size(), '\0'), b(looped->size(), '\0');
    ASSERT_TRUE(batched->ReadAt(0, a.data(), a.size()).ok());
    ASSERT_TRUE(looped->ReadAt(0, b.data(), b.size()).ok());
    EXPECT_EQ(a, b);
  }
}

TEST_F(IoBackendTest, WriteBatchCoalescesSyscalls) {
  // 64 offset-contiguous ops must collapse into far fewer kernel round
  // trips: one pwritev on the pread backend, a handful of ring enters on
  // uring. write_syscalls is the counter the checkpoint reduction gate
  // watches.
  for (const IoBackend backend : {IoBackend::kPread, IoBackend::kUring}) {
    if (backend == IoBackend::kUring && !IoUringAvailable()) continue;
    SCOPED_TRACE(IoBackendName(backend));
    auto file = OpenFile(Path("f_" + std::string(IoBackendName(backend))),
                         backend)
                    .value();
    IoStats stats;
    file->set_io_stats(&stats);
    constexpr size_t kOps = 64;
    std::vector<std::string> payloads(kOps);
    std::vector<WriteOp> ops(kOps);
    for (size_t i = 0; i < kOps; ++i) {
      payloads[i].assign(512, static_cast<char>('a' + (i % 26)));
      ops[i] = WriteOp{i * 512, payloads[i].data(), 512, Status::OK()};
    }
    const uint64_t before = stats.write_syscalls.load();
    ASSERT_TRUE(file->WriteBatch(ops.data(), ops.size()).ok());
    const uint64_t delta = stats.write_syscalls.load() - before;
    EXPECT_GE(delta, 1u);
    EXPECT_LE(delta, kOps / 2) << "vectored writes did not coalesce";
    if (backend == IoBackend::kPread) {
      EXPECT_EQ(delta, 1u);  // one contiguous run, one pwritev
    }
    for (size_t i = 0; i < kOps; ++i) {
      std::string got(512, '\0');
      ASSERT_TRUE(file->ReadAt(i * 512, got.data(), got.size()).ok());
      EXPECT_EQ(got, payloads[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Pager::ReadPages / PrefetchPages
// ---------------------------------------------------------------------------

using PagerBatchTest = TempDir;

TEST_F(PagerBatchTest, PrefetchThenDemandReadsHitCache) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  std::vector<PageId> pages;
  {
    auto txn = pager->BeginWrite().value();
    for (int i = 0; i < 8; ++i) {
      const PageId pid = pager->AllocatePage(txn.get()).value();
      pager->GetMutablePage(txn.get(), pid).value()->WriteU32(0, 100 + i);
      pages.push_back(pid);
    }
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  pager->DropCaches();
  const uint64_t seq = pager->BeginSnapshot();
  const IoStats::View before = pager->io_stats().Snapshot();
  pager->PrefetchPages(pages, seq);
  const IoStats::View mid = pager->io_stats().Snapshot() - before;
  EXPECT_EQ(mid.pages_prefetched, pages.size());
  EXPECT_GT(mid.batch_reads, 0u);
  // Every demand read is now a cache hit, and the first hit per page
  // counts as a prefetch hit.
  for (size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(pager->ReadPage(pages[i], seq).value()->ReadU32(0), 100 + i);
  }
  const IoStats::View after = pager->io_stats().Snapshot() - before;
  EXPECT_EQ(after.prefetch_hits, pages.size());
  EXPECT_EQ(after.pages_cache_hit, pages.size());
  pager->EndSnapshot(seq);
}

TEST_F(PagerBatchTest, ReadPagesIsStrictAndIdempotent) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  std::vector<PageId> pages;
  {
    auto txn = pager->BeginWrite().value();
    for (int i = 0; i < 4; ++i) {
      pages.push_back(pager->AllocatePage(txn.get()).value());
    }
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  // Fold into the main file so the batch exercises the main-file arm too.
  ASSERT_TRUE(pager->Checkpoint().ok());
  pager->DropCaches();
  const uint64_t seq = pager->BeginSnapshot();
  ASSERT_TRUE(pager->ReadPages(pages, seq).ok());
  // A second call finds everything resident: no new I/O.
  const IoStats::View before = pager->io_stats().Snapshot();
  ASSERT_TRUE(pager->ReadPages(pages, seq).ok());
  const IoStats::View delta = pager->io_stats().Snapshot() - before;
  EXPECT_EQ(delta.pages_read_main, 0u);
  EXPECT_EQ(delta.pages_read_wal, 0u);
  // A bogus page id is an error for the strict API...
  std::vector<PageId> bogus = {static_cast<PageId>(1 << 20)};
  EXPECT_FALSE(pager->ReadPages(bogus, seq).ok());
  // ...and silently dropped by the best-effort one.
  pager->PrefetchPages(bogus, seq);
  pager->EndSnapshot(seq);
}

TEST_F(PagerBatchTest, FaultWrapperInterceptsPagerIo) {
  // Fail the WAL commit append deterministically: the commit must error
  // and the data must stay absent after reopening without faults.
  FaultInjectionFile* wal_file = nullptr;
  PagerOptions opts;
  opts.file_wrapper = [&](std::unique_ptr<FileHandle> base,
                          std::string_view role)
      -> std::unique_ptr<FileHandle> {
    if (role != "wal") return base;
    FaultSchedule s;
    // Write #1 is the fresh WAL's header; #2 is the first commit's frame
    // write.
    s.fail_write_at = 2;
    auto wrapped =
        std::make_unique<FaultInjectionFile>(std::move(base), s);
    wal_file = wrapped.get();
    return wrapped;
  };
  {
    auto pager = Pager::Open(Path("db"), opts).value();
    ASSERT_NE(wal_file, nullptr);
    auto txn = pager->BeginWrite().value();
    pager->AllocatePage(txn.get()).value();
    EXPECT_FALSE(pager->CommitWrite(std::move(txn)).ok());
    EXPECT_GE(wal_file->counters().writes, 1u);
  }
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  EXPECT_EQ(pager->last_committed_seq(), 0u);
  EXPECT_EQ(pager->page_count(), 1u);  // just the header page
}

TEST_F(PagerBatchTest, AsyncPrefetchInstallsPagesOnFinish) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  std::vector<PageId> pages;
  {
    auto txn = pager->BeginWrite().value();
    for (int i = 0; i < 8; ++i) {
      const PageId pid = pager->AllocatePage(txn.get()).value();
      pager->GetMutablePage(txn.get(), pid).value()->WriteU32(0, 100 + i);
      pages.push_back(pid);
    }
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  // Fold so the async main-file arm (not the synchronous WAL arm) serves
  // the reads.
  ASSERT_TRUE(pager->Checkpoint().ok());
  pager->DropCaches();
  const uint64_t seq = pager->BeginSnapshot();
  const IoStats::View before = pager->io_stats().Snapshot();
  {
    std::unique_ptr<AsyncPrefetch> handle =
        pager->PrefetchPagesAsync(pages, seq);
    ASSERT_NE(handle, nullptr);
    handle->Finish();
  }
  const IoStats::View mid = pager->io_stats().Snapshot() - before;
  EXPECT_EQ(mid.pages_prefetched, pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(pager->ReadPage(pages[i], seq).value()->ReadU32(0), 100 + i);
  }
  const IoStats::View after = pager->io_stats().Snapshot() - before;
  EXPECT_EQ(after.prefetch_hits, pages.size());
  EXPECT_EQ(after.pages_cache_hit, pages.size());
  // Cached pages produce no in-flight work: null handle.
  EXPECT_EQ(pager->PrefetchPagesAsync(pages, seq), nullptr);
  pager->EndSnapshot(seq);
}

TEST_F(PagerBatchTest, EvictionCountersMatchShardSums) {
  PagerOptions opts;
  opts.cache_bytes = 8 * kPageSize;  // tiny: sweeping 64 pages must evict
  auto pager = Pager::Open(Path("db"), opts).value();
  std::vector<PageId> pages;
  {
    auto txn = pager->BeginWrite().value();
    for (int i = 0; i < 64; ++i) {
      pages.push_back(pager->AllocatePage(txn.get()).value());
    }
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  ASSERT_TRUE(pager->Checkpoint().ok());
  pager->DropCaches();
  const uint64_t seq = pager->BeginSnapshot();
  const IoStats::View before = pager->io_stats().Snapshot();
  ASSERT_TRUE(pager->ReadPages(pages, seq).ok());
  pager->EndSnapshot(seq);
  const IoStats::View delta = pager->io_stats().Snapshot() - before;
  EXPECT_GT(delta.cache_evictions, 0u);
  uint64_t shard_sum = 0;
  for (const uint64_t e : delta.cache_shard_evictions) shard_sum += e;
  EXPECT_EQ(shard_sum, delta.cache_evictions);
}

TEST_F(PagerBatchTest, CheckpointBackfillCoalescesWrites) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  {
    auto txn = pager->BeginWrite().value();
    for (int i = 0; i < 64; ++i) {
      const PageId pid = pager->AllocatePage(txn.get()).value();
      pager->GetMutablePage(txn.get(), pid).value()->WriteU32(0, 7 * i);
    }
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  const IoStats::View before = pager->io_stats().Snapshot();
  ASSERT_TRUE(pager->Checkpoint().ok());
  const IoStats::View delta = pager->io_stats().Snapshot() - before;
  EXPECT_GE(delta.checkpoint_pages, 64u);
  // The acceptance gate: vectored backfill must fold at least 2 pages per
  // write syscall (the delta includes the WAL's own header writes, so the
  // real coalescing factor is higher still).
  EXPECT_GE(delta.checkpoint_pages, 2 * delta.write_syscalls)
      << "checkpoint_pages=" << delta.checkpoint_pages
      << " write_syscalls=" << delta.write_syscalls;
}

TEST_F(PagerBatchTest, TornVectoredCheckpointWriteRefoldsOnRetry) {
  // Power dies mid-way through the checkpoint's vectored backfill: one
  // main-file write tears. The durable-watermark-first ordering means the
  // WAL still owns every frame, so reads stay correct and the next
  // checkpoint re-folds the same frames over the torn bytes.
  FaultInjectionFile* db_file = nullptr;
  PagerOptions opts;
  opts.file_wrapper = [&](std::unique_ptr<FileHandle> base,
                          std::string_view role)
      -> std::unique_ptr<FileHandle> {
    if (role != "db") return base;
    auto wrapped =
        std::make_unique<FaultInjectionFile>(std::move(base), FaultSchedule{});
    db_file = wrapped.get();
    return wrapped;
  };
  auto pager = Pager::Open(Path("db"), opts).value();
  ASSERT_NE(db_file, nullptr);
  std::vector<PageId> pages;
  {
    auto txn = pager->BeginWrite().value();
    for (int i = 0; i < 16; ++i) {
      const PageId pid = pager->AllocatePage(txn.get()).value();
      pager->GetMutablePage(txn.get(), pid).value()->WriteU32(0, 9000 + i);
      pages.push_back(pid);
    }
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  // Arm: the next main-file write (the first vectored backfill run) tears
  // after 100 bytes.
  FaultSchedule tear;
  tear.torn_write_at = db_file->counters().writes + 1;
  tear.torn_write_bytes = 100;
  db_file->set_schedule(tear);
  EXPECT_FALSE(pager->Checkpoint().ok());
  db_file->set_schedule(FaultSchedule{});
  // The watermark never advanced past the tear, so reads resolve from the
  // WAL and stay correct...
  pager->DropCaches();
  {
    const uint64_t seq = pager->BeginSnapshot();
    for (size_t i = 0; i < pages.size(); ++i) {
      EXPECT_EQ(pager->ReadPage(pages[i], seq).value()->ReadU32(0), 9000 + i);
    }
    pager->EndSnapshot(seq);
  }
  // ...and the retried checkpoint re-folds over the torn bytes: the main
  // file now serves the same contents.
  ASSERT_TRUE(pager->Checkpoint().ok());
  pager->DropCaches();
  {
    const uint64_t seq = pager->BeginSnapshot();
    for (size_t i = 0; i < pages.size(); ++i) {
      EXPECT_EQ(pager->ReadPage(pages[i], seq).value()->ReadU32(0), 9000 + i);
    }
    pager->EndSnapshot(seq);
  }
}

// ---------------------------------------------------------------------------
// PrefetchController (DbOptions::adaptive_prefetch)
// ---------------------------------------------------------------------------

TEST(PrefetchControllerTest, AimdPolicyAndProbe) {
  PrefetchController c(2, 4);
  EXPECT_EQ(c.depth(), 2u);
  // Converting well with no evictions: additive increase, clamped at max.
  c.Observe(100, 90, 0);
  EXPECT_EQ(c.depth(), 3u);
  c.Observe(100, 90, 0);
  EXPECT_EQ(c.depth(), 4u);
  c.Observe(100, 90, 0);
  EXPECT_EQ(c.depth(), 4u);
  // Middle zone (converting OK, not great): hold.
  c.Observe(100, 60, 10);
  EXPECT_EQ(c.depth(), 4u);
  // Mostly unused read-ahead: back off.
  c.Observe(100, 10, 0);
  EXPECT_EQ(c.depth(), 3u);
  // Churning the cache harder than it fetches: back off.
  c.Observe(100, 90, 150);
  EXPECT_EQ(c.depth(), 2u);
  // Drive to zero...
  c.Observe(10, 0, 0);
  c.Observe(10, 0, 0);
  EXPECT_EQ(c.depth(), 0u);
  // ...and idle groups probe back at depth 1 after a few rounds.
  c.Observe(0, 0, 0);
  c.Observe(0, 0, 0);
  c.Observe(0, 0, 0);
  EXPECT_EQ(c.depth(), 0u);
  c.Observe(0, 0, 0);
  EXPECT_EQ(c.depth(), 1u);
}

TEST(PrefetchControllerTest, InitialDepthClampedToMax) {
  PrefetchController c(16, 4);
  EXPECT_EQ(c.depth(), 4u);
}

// ---------------------------------------------------------------------------
// End-to-end cold-cache parity: backends x prefetch depths
// ---------------------------------------------------------------------------

class ColdCacheParityTest : public TempDir {
 protected:
  static constexpr uint32_t kDim = 16;
  static constexpr size_t kRows = 800;
  static constexpr size_t kQueries = 6;

  DbOptions BaseOptions() const {
    DbOptions o;
    o.dim = kDim;
    o.target_cluster_size = 64;
    o.mqo_window_us = 0;  // direct execution: deterministic single queries
    o.pager.cache_bytes = 4 << 20;
    return o;
  }

  void BuildDataset(const std::string& path) {
    auto db = DB::Open(path, BaseOptions()).value();
    Rng rng(7);
    std::vector<UpsertRequest> batch;
    for (size_t i = 0; i < kRows; ++i) {
      UpsertRequest r;
      r.asset_id = "asset_" + std::to_string(i);
      r.vector.resize(kDim);
      for (auto& v : r.vector) v = rng.NextFloat();
      batch.push_back(std::move(r));
    }
    ASSERT_TRUE(db->Upsert(batch).ok());
    ASSERT_TRUE(db->BuildIndex().ok());
    ASSERT_TRUE(db->Close().ok());
  }

  std::vector<std::vector<float>> Queries() const {
    Rng rng(99);
    std::vector<std::vector<float>> qs(kQueries);
    for (auto& q : qs) {
      q.resize(kDim);
      for (auto& v : q) v = rng.NextFloat();
    }
    return qs;
  }

  struct RunResult {
    std::vector<uint64_t> ids;
    std::vector<float> distances;
    std::vector<uint64_t> counters;  // per-query rows/partitions scanned
    IoStats::View io;
  };

  RunResult RunQueries(const std::string& path, IoBackend backend,
                       uint32_t prefetch_depth, bool async = true,
                       bool adaptive = false) {
    DbOptions o = BaseOptions();
    o.pager.io_backend = backend;
    o.prefetch_depth = prefetch_depth;
    o.async_prefetch = async;
    o.adaptive_prefetch = adaptive;
    auto db = DB::Open(path, o).value();
    db->DropCaches();
    RunResult out;
    const IoStats::View before = db->io_stats().Snapshot();
    for (const auto& q : Queries()) {
      // One plain ANN and one exact query per vector: both partition-scan
      // shapes go through the prefetching drain loop.
      for (const bool exact : {false, true}) {
        SearchRequest req;
        req.query = q;
        req.k = 10;
        req.exact = exact;
        auto resp = db->Search(req).value();
        for (const auto& item : resp.items) {
          out.ids.push_back(item.vid);
          out.distances.push_back(item.distance);
        }
        out.counters.push_back(resp.rows_scanned);
        out.counters.push_back(resp.partitions_scanned);
      }
    }
    out.io = db->io_stats().Snapshot() - before;
    EXPECT_TRUE(db->Close().ok());
    return out;
  }
};

TEST_F(ColdCacheParityTest, BackendsAndDepthsAreBitIdentical) {
  const std::string path = Path("db");
  BuildDataset(path);

  // The seed blocking path: pread backend, no read-ahead.
  const RunResult baseline = RunQueries(path, IoBackend::kPread, 0);
  ASSERT_FALSE(baseline.ids.empty());
  EXPECT_EQ(baseline.io.pages_prefetched, 0u);
  EXPECT_EQ(baseline.io.prefetch_hits, 0u);

  struct Config {
    IoBackend backend;
    uint32_t depth;
  };
  const Config configs[] = {
      {IoBackend::kPread, 2},
      {IoBackend::kPread, 8},
      {IoBackend::kUring, 0},
      {IoBackend::kUring, 2},
      {IoBackend::kUring, 8},
  };
  for (const Config& c : configs) {
    SCOPED_TRACE(std::string(IoBackendName(c.backend)) + " depth " +
                 std::to_string(c.depth));
    const RunResult got = RunQueries(path, c.backend, c.depth);
    EXPECT_EQ(got.ids, baseline.ids);
    EXPECT_EQ(got.distances, baseline.distances);  // bit-identical floats
    EXPECT_EQ(got.counters, baseline.counters);
    if (c.depth > 0) {
      EXPECT_GT(got.io.pages_prefetched, 0u);
      EXPECT_GT(got.io.prefetch_hits, 0u);
      EXPECT_GT(got.io.batch_reads, 0u);
    } else {
      EXPECT_EQ(got.io.pages_prefetched, 0u);
      EXPECT_EQ(got.io.prefetch_hits, 0u);
    }
  }
}

TEST_F(ColdCacheParityTest, AsyncAndAdaptiveAreBitIdentical) {
  // The full mode matrix against the fully blocking seed path: {pread,
  // uring} x {submit-and-wait, async overlap} x {fixed, adaptive depth}.
  // Same randomized workload, bit-identical results and per-query
  // counters in every cell.
  const std::string path = Path("db");
  BuildDataset(path);
  const RunResult baseline =
      RunQueries(path, IoBackend::kPread, 0, /*async=*/false);
  ASSERT_FALSE(baseline.ids.empty());

  struct Config {
    IoBackend backend;
    uint32_t depth;
    bool async;
    bool adaptive;
  };
  const Config configs[] = {
      {IoBackend::kPread, 2, false, false},
      {IoBackend::kPread, 2, true, false},
      {IoBackend::kPread, 2, true, true},
      {IoBackend::kUring, 2, false, false},
      {IoBackend::kUring, 2, true, false},
      {IoBackend::kUring, 2, true, true},
      {IoBackend::kUring, 8, true, true},
  };
  for (const Config& c : configs) {
    SCOPED_TRACE(std::string(IoBackendName(c.backend)) + " depth " +
                 std::to_string(c.depth) + (c.async ? " async" : " sync") +
                 (c.adaptive ? " adaptive" : " fixed"));
    const RunResult got =
        RunQueries(path, c.backend, c.depth, c.async, c.adaptive);
    EXPECT_EQ(got.ids, baseline.ids);
    EXPECT_EQ(got.distances, baseline.distances);  // bit-identical floats
    EXPECT_EQ(got.counters, baseline.counters);
    EXPECT_GT(got.io.pages_prefetched, 0u);
    EXPECT_GT(got.io.prefetch_hits, 0u);
  }
}

TEST_F(ColdCacheParityTest, ForcedFallbackStillPrefetches) {
  // With io_uring forced unavailable, a uring request must transparently
  // run the batched path over pread — same results, same prefetch
  // counters, just a different syscall pattern.
  const std::string path = Path("db");
  BuildDataset(path);
  const RunResult baseline = RunQueries(path, IoBackend::kPread, 2);
  OverrideIoUringAvailabilityForTest(false);
  const RunResult fallback = RunQueries(path, IoBackend::kUring, 2);
  OverrideIoUringAvailabilityForTest(std::nullopt);
  EXPECT_EQ(fallback.ids, baseline.ids);
  EXPECT_EQ(fallback.distances, baseline.distances);
  EXPECT_GT(fallback.io.pages_prefetched, 0u);
}

}  // namespace
}  // namespace micronn

// The batched read path: backend selection (pread / io_uring / forced
// fallback), FileHandle::ReadBatch correctness on both backends,
// Pager::ReadPages / PrefetchPages semantics and counters, fault injection
// through PagerOptions::file_wrapper, and end-to-end cold-cache parity —
// every backend x prefetch depth must return bit-identical search results
// and per-query counters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/db.h"
#include "storage/file.h"
#include "storage/io_backend.h"
#include "storage/pager.h"
#include "support/fault_injection_file.h"

namespace micronn {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    OverrideIoUringAvailabilityForTest(std::nullopt);
    ::unsetenv("MICRONN_IO_BACKEND");
    std::filesystem::remove_all(dir_);
  }
  std::string Path(const std::string& name) const { return dir_ / name; }
  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

TEST(IoBackendNameTest, ParseRoundTrip) {
  for (const IoBackend b :
       {IoBackend::kAuto, IoBackend::kPread, IoBackend::kUring}) {
    const auto parsed = ParseIoBackend(IoBackendName(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(ParseIoBackend("aio").has_value());
  EXPECT_FALSE(ParseIoBackend("").has_value());
}

using IoBackendTest = TempDir;

TEST_F(IoBackendTest, ResolveNeverReturnsAuto) {
  for (const IoBackend b :
       {IoBackend::kAuto, IoBackend::kPread, IoBackend::kUring}) {
    const IoBackend r = ResolveIoBackend(b);
    EXPECT_NE(r, IoBackend::kAuto);
  }
}

TEST_F(IoBackendTest, UringRequestFallsBackWhenUnavailable) {
  OverrideIoUringAvailabilityForTest(false);
  EXPECT_EQ(ResolveIoBackend(IoBackend::kUring), IoBackend::kPread);
  EXPECT_EQ(ResolveIoBackend(IoBackend::kAuto), IoBackend::kPread);
  IoBackend effective = IoBackend::kAuto;
  auto file = OpenFile(Path("f"), IoBackend::kUring, &effective);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(effective, IoBackend::kPread);
}

TEST_F(IoBackendTest, EnvOverrideWins) {
  OverrideIoUringAvailabilityForTest(true);
  ::setenv("MICRONN_IO_BACKEND", "pread", 1);
  EXPECT_EQ(ResolveIoBackend(IoBackend::kUring), IoBackend::kPread);
  EXPECT_EQ(ResolveIoBackend(IoBackend::kAuto), IoBackend::kPread);
  ::unsetenv("MICRONN_IO_BACKEND");
}

TEST_F(IoBackendTest, PagerReportsEffectiveBackend) {
  OverrideIoUringAvailabilityForTest(false);
  PagerOptions opts;
  opts.io_backend = IoBackend::kUring;
  auto pager = Pager::Open(Path("db"), opts).value();
  EXPECT_EQ(pager->io_backend(), IoBackend::kPread);
}

// ---------------------------------------------------------------------------
// ReadBatch correctness (both backends)
// ---------------------------------------------------------------------------

void FillFile(FileHandle* file, size_t n_blocks) {
  std::string block(512, '\0');
  for (size_t b = 0; b < n_blocks; ++b) {
    for (size_t i = 0; i < block.size(); ++i) {
      block[i] = static_cast<char>((b * 31 + i) & 0xff);
    }
    ASSERT_TRUE(file->WriteAt(b * block.size(), block.data(), block.size())
                    .ok());
  }
}

void CheckBatchAgainstReadAt(FileHandle* file, size_t n_blocks) {
  Rng rng(1234);
  for (int round = 0; round < 8; ++round) {
    const size_t n_ops = 1 + rng.Uniform(200);
    std::vector<std::string> expect(n_ops);
    std::vector<std::string> got(n_ops);
    std::vector<ReadOp> ops(n_ops);
    for (size_t i = 0; i < n_ops; ++i) {
      const uint64_t off = rng.Uniform(n_blocks * 512 - 256);
      const size_t len = 1 + rng.Uniform(256);
      expect[i].resize(len);
      ASSERT_TRUE(file->ReadAt(off, expect[i].data(), len).ok());
      got[i].resize(len);
      ops[i] = ReadOp{off, got[i].data(), len, Status::OK()};
    }
    ASSERT_TRUE(file->ReadBatch(ops.data(), ops.size()).ok());
    for (size_t i = 0; i < n_ops; ++i) {
      ASSERT_TRUE(ops[i].status.ok()) << ops[i].status.ToString();
      EXPECT_EQ(got[i], expect[i]) << "op " << i << " round " << round;
    }
  }
}

TEST_F(IoBackendTest, PosixReadBatchMatchesReadAt) {
  auto file = OpenFile(Path("f"), IoBackend::kPread).value();
  FillFile(file.get(), 64);
  CheckBatchAgainstReadAt(file.get(), 64);
}

TEST_F(IoBackendTest, UringReadBatchMatchesReadAt) {
  if (!IoUringAvailable()) {
    GTEST_SKIP() << "io_uring not available in this build/kernel";
  }
  IoBackend effective = IoBackend::kAuto;
  auto file = OpenFile(Path("f"), IoBackend::kUring, &effective).value();
  ASSERT_EQ(effective, IoBackend::kUring);
  FillFile(file.get(), 64);
  CheckBatchAgainstReadAt(file.get(), 64);
}

TEST_F(IoBackendTest, ReadBatchReportsPerOpFailures) {
  for (const IoBackend backend : {IoBackend::kPread, IoBackend::kUring}) {
    if (backend == IoBackend::kUring && !IoUringAvailable()) continue;
    auto file = OpenFile(Path("f_" + std::string(IoBackendName(backend))),
                         backend)
                    .value();
    ASSERT_TRUE(file->WriteAt(0, "0123456789", 10).ok());
    char a[4], b[4];
    ReadOp ops[2] = {
        {2, a, 4, Status::OK()},
        {1 << 20, b, 4, Status::OK()},  // far past EOF
    };
    ASSERT_TRUE(file->ReadBatch(ops, 2).ok());
    EXPECT_TRUE(ops[0].status.ok());
    EXPECT_EQ(std::string(a, 4), "2345");
    EXPECT_FALSE(ops[1].status.ok()) << IoBackendName(backend);
  }
}

// ---------------------------------------------------------------------------
// Pager::ReadPages / PrefetchPages
// ---------------------------------------------------------------------------

using PagerBatchTest = TempDir;

TEST_F(PagerBatchTest, PrefetchThenDemandReadsHitCache) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  std::vector<PageId> pages;
  {
    auto txn = pager->BeginWrite().value();
    for (int i = 0; i < 8; ++i) {
      const PageId pid = pager->AllocatePage(txn.get()).value();
      pager->GetMutablePage(txn.get(), pid).value()->WriteU32(0, 100 + i);
      pages.push_back(pid);
    }
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  pager->DropCaches();
  const uint64_t seq = pager->BeginSnapshot();
  const IoStats::View before = pager->io_stats().Snapshot();
  pager->PrefetchPages(pages, seq);
  const IoStats::View mid = pager->io_stats().Snapshot() - before;
  EXPECT_EQ(mid.pages_prefetched, pages.size());
  EXPECT_GT(mid.batch_reads, 0u);
  // Every demand read is now a cache hit, and the first hit per page
  // counts as a prefetch hit.
  for (size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(pager->ReadPage(pages[i], seq).value()->ReadU32(0), 100 + i);
  }
  const IoStats::View after = pager->io_stats().Snapshot() - before;
  EXPECT_EQ(after.prefetch_hits, pages.size());
  EXPECT_EQ(after.pages_cache_hit, pages.size());
  pager->EndSnapshot(seq);
}

TEST_F(PagerBatchTest, ReadPagesIsStrictAndIdempotent) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  std::vector<PageId> pages;
  {
    auto txn = pager->BeginWrite().value();
    for (int i = 0; i < 4; ++i) {
      pages.push_back(pager->AllocatePage(txn.get()).value());
    }
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  // Fold into the main file so the batch exercises the main-file arm too.
  ASSERT_TRUE(pager->Checkpoint().ok());
  pager->DropCaches();
  const uint64_t seq = pager->BeginSnapshot();
  ASSERT_TRUE(pager->ReadPages(pages, seq).ok());
  // A second call finds everything resident: no new I/O.
  const IoStats::View before = pager->io_stats().Snapshot();
  ASSERT_TRUE(pager->ReadPages(pages, seq).ok());
  const IoStats::View delta = pager->io_stats().Snapshot() - before;
  EXPECT_EQ(delta.pages_read_main, 0u);
  EXPECT_EQ(delta.pages_read_wal, 0u);
  // A bogus page id is an error for the strict API...
  std::vector<PageId> bogus = {static_cast<PageId>(1 << 20)};
  EXPECT_FALSE(pager->ReadPages(bogus, seq).ok());
  // ...and silently dropped by the best-effort one.
  pager->PrefetchPages(bogus, seq);
  pager->EndSnapshot(seq);
}

TEST_F(PagerBatchTest, FaultWrapperInterceptsPagerIo) {
  // Fail the WAL commit append deterministically: the commit must error
  // and the data must stay absent after reopening without faults.
  FaultInjectionFile* wal_file = nullptr;
  PagerOptions opts;
  opts.file_wrapper = [&](std::unique_ptr<FileHandle> base,
                          std::string_view role)
      -> std::unique_ptr<FileHandle> {
    if (role != "wal") return base;
    FaultSchedule s;
    // Write #1 is the fresh WAL's header; #2 is the first commit's frame
    // write.
    s.fail_write_at = 2;
    auto wrapped =
        std::make_unique<FaultInjectionFile>(std::move(base), s);
    wal_file = wrapped.get();
    return wrapped;
  };
  {
    auto pager = Pager::Open(Path("db"), opts).value();
    ASSERT_NE(wal_file, nullptr);
    auto txn = pager->BeginWrite().value();
    pager->AllocatePage(txn.get()).value();
    EXPECT_FALSE(pager->CommitWrite(std::move(txn)).ok());
    EXPECT_GE(wal_file->counters().writes, 1u);
  }
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  EXPECT_EQ(pager->last_committed_seq(), 0u);
  EXPECT_EQ(pager->page_count(), 1u);  // just the header page
}

// ---------------------------------------------------------------------------
// End-to-end cold-cache parity: backends x prefetch depths
// ---------------------------------------------------------------------------

class ColdCacheParityTest : public TempDir {
 protected:
  static constexpr uint32_t kDim = 16;
  static constexpr size_t kRows = 800;
  static constexpr size_t kQueries = 6;

  DbOptions BaseOptions() const {
    DbOptions o;
    o.dim = kDim;
    o.target_cluster_size = 64;
    o.mqo_window_us = 0;  // direct execution: deterministic single queries
    o.pager.cache_bytes = 4 << 20;
    return o;
  }

  void BuildDataset(const std::string& path) {
    auto db = DB::Open(path, BaseOptions()).value();
    Rng rng(7);
    std::vector<UpsertRequest> batch;
    for (size_t i = 0; i < kRows; ++i) {
      UpsertRequest r;
      r.asset_id = "asset_" + std::to_string(i);
      r.vector.resize(kDim);
      for (auto& v : r.vector) v = rng.NextFloat();
      batch.push_back(std::move(r));
    }
    ASSERT_TRUE(db->Upsert(batch).ok());
    ASSERT_TRUE(db->BuildIndex().ok());
    ASSERT_TRUE(db->Close().ok());
  }

  std::vector<std::vector<float>> Queries() const {
    Rng rng(99);
    std::vector<std::vector<float>> qs(kQueries);
    for (auto& q : qs) {
      q.resize(kDim);
      for (auto& v : q) v = rng.NextFloat();
    }
    return qs;
  }

  struct RunResult {
    std::vector<uint64_t> ids;
    std::vector<float> distances;
    std::vector<uint64_t> counters;  // per-query rows/partitions scanned
    IoStats::View io;
  };

  RunResult RunQueries(const std::string& path, IoBackend backend,
                       uint32_t prefetch_depth) {
    DbOptions o = BaseOptions();
    o.pager.io_backend = backend;
    o.prefetch_depth = prefetch_depth;
    auto db = DB::Open(path, o).value();
    db->DropCaches();
    RunResult out;
    const IoStats::View before = db->io_stats().Snapshot();
    for (const auto& q : Queries()) {
      // One plain ANN and one exact query per vector: both partition-scan
      // shapes go through the prefetching drain loop.
      for (const bool exact : {false, true}) {
        SearchRequest req;
        req.query = q;
        req.k = 10;
        req.exact = exact;
        auto resp = db->Search(req).value();
        for (const auto& item : resp.items) {
          out.ids.push_back(item.vid);
          out.distances.push_back(item.distance);
        }
        out.counters.push_back(resp.rows_scanned);
        out.counters.push_back(resp.partitions_scanned);
      }
    }
    out.io = db->io_stats().Snapshot() - before;
    EXPECT_TRUE(db->Close().ok());
    return out;
  }
};

TEST_F(ColdCacheParityTest, BackendsAndDepthsAreBitIdentical) {
  const std::string path = Path("db");
  BuildDataset(path);

  // The seed blocking path: pread backend, no read-ahead.
  const RunResult baseline = RunQueries(path, IoBackend::kPread, 0);
  ASSERT_FALSE(baseline.ids.empty());
  EXPECT_EQ(baseline.io.pages_prefetched, 0u);
  EXPECT_EQ(baseline.io.prefetch_hits, 0u);

  struct Config {
    IoBackend backend;
    uint32_t depth;
  };
  const Config configs[] = {
      {IoBackend::kPread, 2},
      {IoBackend::kPread, 8},
      {IoBackend::kUring, 0},
      {IoBackend::kUring, 2},
      {IoBackend::kUring, 8},
  };
  for (const Config& c : configs) {
    SCOPED_TRACE(std::string(IoBackendName(c.backend)) + " depth " +
                 std::to_string(c.depth));
    const RunResult got = RunQueries(path, c.backend, c.depth);
    EXPECT_EQ(got.ids, baseline.ids);
    EXPECT_EQ(got.distances, baseline.distances);  // bit-identical floats
    EXPECT_EQ(got.counters, baseline.counters);
    if (c.depth > 0) {
      EXPECT_GT(got.io.pages_prefetched, 0u);
      EXPECT_GT(got.io.prefetch_hits, 0u);
      EXPECT_GT(got.io.batch_reads, 0u);
    } else {
      EXPECT_EQ(got.io.pages_prefetched, 0u);
      EXPECT_EQ(got.io.prefetch_hits, 0u);
    }
  }
}

TEST_F(ColdCacheParityTest, ForcedFallbackStillPrefetches) {
  // With io_uring forced unavailable, a uring request must transparently
  // run the batched path over pread — same results, same prefetch
  // counters, just a different syscall pattern.
  const std::string path = Path("db");
  BuildDataset(path);
  const RunResult baseline = RunQueries(path, IoBackend::kPread, 2);
  OverrideIoUringAvailabilityForTest(false);
  const RunResult fallback = RunQueries(path, IoBackend::kUring, 2);
  OverrideIoUringAvailabilityForTest(std::nullopt);
  EXPECT_EQ(fallback.ids, baseline.ids);
  EXPECT_EQ(fallback.distances, baseline.distances);
  EXPECT_GT(fallback.io.pages_prefetched, 0u);
}

}  // namespace
}  // namespace micronn

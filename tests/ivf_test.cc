// IVF module tests: clustering (Algorithm 1), schema codecs, partition
// scans, ANN search (Algorithm 2), the in-memory baseline, maintenance
// policy.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numeric>

#include "common/memory_tracker.h"
#include "common/rng.h"
#include "datagen/dataset.h"
#include "numerics/distance.h"
#include "ivf/in_memory_index.h"
#include "ivf/kmeans.h"
#include "ivf/maintenance.h"
#include "ivf/schema.h"
#include "ivf/search.h"
#include "storage/engine.h"
#include "storage/key_encoding.h"

namespace micronn {
namespace {

TEST(SchemaTest, VectorKeyRoundTrip) {
  const std::string k = VectorKey(7, 123456789);
  uint32_t partition;
  uint64_t vid;
  ASSERT_TRUE(ParseVectorKey(k, &partition, &vid).ok());
  EXPECT_EQ(partition, 7u);
  EXPECT_EQ(vid, 123456789u);
  EXPECT_FALSE(ParseVectorKey("short", &partition, &vid).ok());
}

TEST(SchemaTest, PartitionPrefixOrdersKeys) {
  // All keys of partition p share a prefix, and partitions are contiguous.
  EXPECT_LT(VectorKey(1, UINT64_MAX), VectorKey(2, 0));
  EXPECT_TRUE(VectorKey(3, 42).starts_with(PartitionPrefix(3)));
}

TEST(SchemaTest, VectorRowRoundTrip) {
  const std::vector<float> v = {1.f, 2.f, 3.f};
  const std::string row = EncodeVectorRow("asset-1", v.data(), 3);
  VectorRow out;
  ASSERT_TRUE(DecodeVectorRow(row, 3, &out).ok());
  EXPECT_EQ(out.asset_id, "asset-1");
  const float* decoded =
      reinterpret_cast<const float*>(out.vector_blob.data());
  EXPECT_EQ(decoded[2], 3.f);
  EXPECT_FALSE(DecodeVectorRow(row, 4, &out).ok());
}

TEST(SchemaTest, CentroidRowRoundTrip) {
  const std::vector<float> c = {0.5f, -0.5f};
  const std::string row = EncodeCentroidRow(42, c.data(), 2);
  CentroidRow out;
  ASSERT_TRUE(DecodeCentroidRow(row, 2, &out).ok());
  EXPECT_EQ(out.count, 42u);
  EXPECT_EQ(out.centroid[1], -0.5f);
}

// --- Clustering ---

// Builds a well-separated 2-D mixture for clustering sanity checks.
std::vector<float> MakeBlobs(size_t n, size_t blobs, float spread,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n * 2);
  for (size_t i = 0; i < n; ++i) {
    const size_t b = i % blobs;
    const float cx = static_cast<float>(b % 4) * 10.f;
    const float cy = static_cast<float>(b / 4) * 10.f;
    data[i * 2] = cx + spread * static_cast<float>(rng.NextGaussian());
    data[i * 2 + 1] = cy + spread * static_cast<float>(rng.NextGaussian());
  }
  return data;
}

TEST(KMeansTest, FullKMeansFindsBlobs) {
  const auto data = MakeBlobs(2000, 8, 0.3f, 1);
  ClusteringConfig config;
  // Over-provision k relative to the 8 blobs: random-init Lloyd can merge
  // blobs at k == #blobs, which is an init artifact, not a code bug.
  config.k = 16;
  config.dim = 2;
  config.iterations = 25;
  config.seed = 7;
  auto centroids = TrainFullKMeans(config, data.data(), 2000).value();
  // Every point should be within ~1.5 of its centroid (blob std 0.3).
  double worst = 0;
  for (size_t i = 0; i < 2000; ++i) {
    const uint32_t c = NearestCentroid(centroids, data.data() + i * 2);
    worst = std::max(worst, static_cast<double>(std::sqrt(
                                L2Squared(data.data() + i * 2,
                                          centroids.row(c), 2))));
  }
  EXPECT_LT(worst, 3.0);
}

TEST(KMeansTest, MiniBatchApproachesFullQuality) {
  const auto data = MakeBlobs(5000, 8, 0.4f, 2);
  ClusteringConfig config;
  config.k = 8;
  config.dim = 2;
  config.iterations = 60;
  config.minibatch_size = 256;
  config.seed = 3;
  MemoryVectorSampler sampler(data.data(), 5000, 2, 11);
  auto centroids = TrainMiniBatchKMeans(config, &sampler).value();
  // Mean quantization error should be small relative to blob distance (10).
  double total = 0;
  for (size_t i = 0; i < 5000; ++i) {
    const uint32_t c = NearestCentroid(centroids, data.data() + i * 2);
    total += std::sqrt(L2Squared(data.data() + i * 2, centroids.row(c), 2));
  }
  EXPECT_LT(total / 5000, 2.0);
}

TEST(KMeansTest, BalancePenaltyReducesVariance) {
  // Skewed data: one dominant blob. With balancing, partition sizes spread.
  Rng rng(5);
  const size_t n = 4000;
  std::vector<float> data(n * 2);
  for (size_t i = 0; i < n; ++i) {
    // 70% of mass in one blob, the rest spread over 7 others.
    const size_t b = (rng.Uniform(10) < 7) ? 0 : 1 + rng.Uniform(7);
    data[i * 2] = static_cast<float>(b % 4) * 8.f +
                  0.5f * static_cast<float>(rng.NextGaussian());
    data[i * 2 + 1] = static_cast<float>(b / 4) * 8.f +
                      0.5f * static_cast<float>(rng.NextGaussian());
  }
  auto size_cv = [&](float lambda) {
    ClusteringConfig config;
    config.k = 16;
    config.dim = 2;
    config.iterations = 80;
    config.minibatch_size = 256;
    config.balance_lambda = lambda;
    config.seed = 9;
    MemoryVectorSampler sampler(data.data(), n, 2, 13);
    auto centroids = TrainMiniBatchKMeans(config, &sampler).value();
    std::vector<uint32_t> assign;
    AssignBlock(centroids, data.data(), n, &assign);
    std::vector<double> counts(config.k, 0);
    for (uint32_t a : assign) counts[a] += 1;
    const double mean = static_cast<double>(n) / config.k;
    double var = 0;
    for (double c : counts) var += (c - mean) * (c - mean);
    return std::sqrt(var / config.k) / mean;
  };
  const double cv_unbalanced = size_cv(0.f);
  const double cv_balanced = size_cv(1.0f);
  EXPECT_LT(cv_balanced, cv_unbalanced);
}

TEST(KMeansTest, DeterministicForSeed) {
  const auto data = MakeBlobs(1000, 4, 0.3f, 4);
  ClusteringConfig config;
  config.k = 4;
  config.dim = 2;
  config.iterations = 20;
  config.minibatch_size = 128;
  config.seed = 21;
  MemoryVectorSampler s1(data.data(), 1000, 2, 17);
  MemoryVectorSampler s2(data.data(), 1000, 2, 17);
  auto c1 = TrainMiniBatchKMeans(config, &s1).value();
  auto c2 = TrainMiniBatchKMeans(config, &s2).value();
  EXPECT_EQ(c1.data, c2.data);
}

TEST(KMeansTest, CosineCentroidsStayNormalized) {
  Dataset ds = GenerateDataset(
      {"cosine", 16, Metric::kCosine, 2000, 10, 16, 0.2f, 6});
  ClusteringConfig config;
  config.k = 16;
  config.dim = 16;
  config.metric = Metric::kCosine;
  config.iterations = 30;
  config.minibatch_size = 256;
  config.seed = 8;
  MemoryVectorSampler sampler(ds.data.data(), 2000, 16, 19);
  auto centroids = TrainMiniBatchKMeans(config, &sampler).value();
  for (uint32_t j = 0; j < centroids.k; ++j) {
    EXPECT_NEAR(Norm(centroids.row(j), 16), 1.0f, 1e-3f);
  }
}

TEST(KMeansTest, KLargerThanDatasetStillWorks) {
  const auto data = MakeBlobs(10, 2, 0.1f, 11);
  ClusteringConfig config;
  config.k = 32;
  config.dim = 2;
  config.iterations = 5;
  config.minibatch_size = 8;
  MemoryVectorSampler sampler(data.data(), 10, 2, 23);
  auto centroids = TrainMiniBatchKMeans(config, &sampler);
  ASSERT_TRUE(centroids.ok());
  EXPECT_EQ(centroids->k, 32u);
}

TEST(KMeansTest, InvalidConfigRejected) {
  MemoryVectorSampler sampler(nullptr, 0, 2, 1);
  ClusteringConfig config;
  config.k = 0;
  config.dim = 2;
  EXPECT_FALSE(TrainMiniBatchKMeans(config, &sampler).ok());
  config.k = 2;
  config.dim = 0;
  EXPECT_FALSE(TrainMiniBatchKMeans(config, &sampler).ok());
}

// --- Disk search over hand-built tables ---

class IvfSearchTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDim = 8;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_ivfsearch_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    engine_ = StorageEngine::Open(dir_ / "db").value();
  }
  void TearDown() override {
    engine_.reset();
    std::filesystem::remove_all(dir_);
  }

  // Builds a 3-partition index with synthetic contents plus a delta row.
  void PopulateSimpleIndex() {
    auto txn = engine_->BeginWrite().value();
    BTree vectors = txn->OpenOrCreateTable(kVectorsTable).value();
    BTree vidmap = txn->OpenOrCreateTable(kVidMapTable).value();
    BTree centroids = txn->OpenOrCreateTable(kCentroidsTable).value();
    BTree meta = txn->OpenOrCreateTable(kMetaTable).value();
    // Partition p centered at (10p, 0, ...): 50 vectors each.
    uint64_t vid = 1;
    Rng rng(3);
    for (uint32_t p = 1; p <= 3; ++p) {
      std::vector<float> centroid(kDim, 0.f);
      centroid[0] = 10.f * p;
      for (int i = 0; i < 50; ++i, ++vid) {
        std::vector<float> v(kDim);
        for (uint32_t d = 0; d < kDim; ++d) {
          v[d] = centroid[d] + 0.5f * static_cast<float>(rng.NextGaussian());
        }
        ASSERT_TRUE(vectors
                        .Put(VectorKey(p, vid),
                             EncodeVectorRow("a" + std::to_string(vid),
                                             v.data(), kDim))
                        .ok());
        ASSERT_TRUE(
            vidmap.Put(key::U64(vid), EncodeVidMapValue(p)).ok());
      }
      ASSERT_TRUE(centroids
                      .Put(key::U32(p),
                           EncodeCentroidRow(50, centroid.data(), kDim))
                      .ok());
    }
    // One delta row near partition 2's center but newer.
    std::vector<float> fresh(kDim, 0.f);
    fresh[0] = 20.f;
    ASSERT_TRUE(vectors
                    .Put(VectorKey(kDeltaPartition, 999),
                         EncodeVectorRow("fresh", fresh.data(), kDim))
                    .ok());
    ASSERT_TRUE(vidmap.Put(key::U64(999),
                           EncodeVidMapValue(kDeltaPartition)).ok());
    ASSERT_TRUE(MetaPutU64(&meta, kMetaIndexVersion, 1).ok());
    ASSERT_TRUE(MetaPutU64(&meta, kMetaDeltaCount, 1).ok());
    ASSERT_TRUE(engine_->Commit(std::move(txn)).ok());
  }

  std::filesystem::path dir_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(IvfSearchTest, CentroidSetLoads) {
  PopulateSimpleIndex();
  auto txn = engine_->BeginRead().value();
  BTree centroids = txn->OpenTable(kCentroidsTable).value();
  BTree meta = txn->OpenTable(kMetaTable).value();
  auto set = LoadCentroidSet(txn->view(), centroids, meta, kDim,
                             Metric::kL2).value();
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.index_version, 1u);
  EXPECT_EQ(set.TotalCount(), 150u);
  std::vector<float> q(kDim, 0.f);
  q[0] = 19.f;
  const auto probe = set.FindNearestPartitions(q.data(), 2);
  ASSERT_EQ(probe.size(), 2u);
  EXPECT_EQ(probe[0], 2u);  // nearest centroid is partition 2
}

TEST_F(IvfSearchTest, ScanPartitionSeesOnlyItsRows) {
  PopulateSimpleIndex();
  auto txn = engine_->BeginRead().value();
  BTree vectors = txn->OpenTable(kVectorsTable).value();
  size_t rows = 0;
  ScanCounters counters;
  ASSERT_TRUE(ScanPartition(vectors, 2, kDim, nullptr,
                            [&](const ScanBlock& b) {
                              rows += b.count;
                              return Status::OK();
                            },
                            &counters)
                  .ok());
  EXPECT_EQ(rows, 50u);
  EXPECT_EQ(counters.rows_scanned, 50u);
}

TEST_F(IvfSearchTest, AnnSearchFindsNearestAndDelta) {
  PopulateSimpleIndex();
  auto txn = engine_->BeginRead().value();
  BTree vectors = txn->OpenTable(kVectorsTable).value();
  BTree centroids = txn->OpenTable(kCentroidsTable).value();
  BTree meta = txn->OpenTable(kMetaTable).value();
  auto cset = LoadCentroidSet(txn->view(), centroids, meta, kDim,
                              Metric::kL2).value();
  std::vector<float> q(kDim, 0.f);
  q[0] = 20.f;  // dead center of partition 2; the delta row sits exactly here
  SearchCounters counters;
  auto result = AnnSearch(vectors, cset, kDim, q.data(), {5, 1}, nullptr,
                          nullptr, &counters).value();
  ASSERT_EQ(result.size(), 5u);
  // The delta vector is an exact match: distance 0, ranked first.
  EXPECT_EQ(result[0].id, 999u);
  EXPECT_FLOAT_EQ(result[0].distance, 0.f);
  EXPECT_EQ(counters.partitions_scanned, 2u);  // 1 probe + delta
}

TEST_F(IvfSearchTest, RecallImprovesWithNprobe) {
  PopulateSimpleIndex();
  auto txn = engine_->BeginRead().value();
  BTree vectors = txn->OpenTable(kVectorsTable).value();
  BTree centroids = txn->OpenTable(kCentroidsTable).value();
  BTree meta = txn->OpenTable(kMetaTable).value();
  auto cset = LoadCentroidSet(txn->view(), centroids, meta, kDim,
                              Metric::kL2).value();
  // Query between partitions 1 and 2: a single probe misses neighbors.
  std::vector<float> q(kDim, 0.f);
  q[0] = 15.f;
  auto truth = ExactSearch(vectors, Metric::kL2, kDim, q.data(), 20, nullptr,
                           nullptr).value();
  double prev_recall = -1;
  for (uint32_t nprobe : {1u, 2u, 3u}) {
    auto got = AnnSearch(vectors, cset, kDim, q.data(), {20, nprobe},
                         nullptr, nullptr, nullptr).value();
    const double recall = RecallAtK(got, truth);
    EXPECT_GE(recall, prev_recall);  // monotonically non-decreasing
    prev_recall = recall;
  }
  EXPECT_DOUBLE_EQ(prev_recall, 1.0);  // all partitions scanned = exact
}

TEST_F(IvfSearchTest, FilterDropsRowsBeforeHeap) {
  PopulateSimpleIndex();
  auto txn = engine_->BeginRead().value();
  BTree vectors = txn->OpenTable(kVectorsTable).value();
  BTree centroids = txn->OpenTable(kCentroidsTable).value();
  BTree meta = txn->OpenTable(kMetaTable).value();
  auto cset = LoadCentroidSet(txn->view(), centroids, meta, kDim,
                              Metric::kL2).value();
  std::vector<float> q(kDim, 0.f);
  q[0] = 20.f;
  RowFilter even_only = [](uint64_t vid) -> Result<bool> {
    return vid % 2 == 0;
  };
  SearchCounters counters;
  auto result = AnnSearch(vectors, cset, kDim, q.data(), {10, 1}, nullptr,
                          even_only, &counters).value();
  for (const Neighbor& n : result) {
    EXPECT_EQ(n.id % 2, 0u);
  }
  EXPECT_GT(counters.rows_filtered, 0u);
}

TEST_F(IvfSearchTest, SearchByVidsIsExactOverSubset) {
  PopulateSimpleIndex();
  auto txn = engine_->BeginRead().value();
  BTree vectors = txn->OpenTable(kVectorsTable).value();
  BTree vidmap = txn->OpenTable(kVidMapTable).value();
  std::vector<float> q(kDim, 0.f);
  q[0] = 10.f;
  const std::vector<uint64_t> subset = {1, 2, 3, 60, 61, 999, 424242};
  auto result = SearchByVids(vectors, vidmap, Metric::kL2, kDim, q.data(), 3,
                             subset, /*pool=*/nullptr, nullptr).value();
  ASSERT_EQ(result.size(), 3u);
  // Result ids must come from the subset (the absent 424242 is skipped).
  for (const Neighbor& n : result) {
    EXPECT_TRUE(std::find(subset.begin(), subset.end(), n.id) !=
                subset.end());
    EXPECT_NE(n.id, 424242u);
  }
}

TEST_F(IvfSearchTest, ParallelScanMatchesSerial) {
  PopulateSimpleIndex();
  auto txn = engine_->BeginRead().value();
  BTree vectors = txn->OpenTable(kVectorsTable).value();
  BTree centroids = txn->OpenTable(kCentroidsTable).value();
  BTree meta = txn->OpenTable(kMetaTable).value();
  auto cset = LoadCentroidSet(txn->view(), centroids, meta, kDim,
                              Metric::kL2).value();
  std::vector<float> q(kDim, 1.f);
  q[0] = 17.f;
  ThreadPool pool(4);
  auto serial = AnnSearch(vectors, cset, kDim, q.data(), {10, 3}, nullptr,
                          nullptr, nullptr).value();
  auto parallel = AnnSearch(vectors, cset, kDim, q.data(), {10, 3}, &pool,
                            nullptr, nullptr).value();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].id, parallel[i].id);
  }
}

// --- InMemory baseline ---

TEST(InMemoryIndexTest, BuildAndSearch) {
  Dataset ds = GenerateDataset({"mem", 16, Metric::kL2, 3000, 20, 24, 0.15f, 7});
  std::vector<uint64_t> ids(3000);
  std::iota(ids.begin(), ids.end(), 1);
  InMemoryIvfIndex::Options options;
  options.dim = 16;
  options.target_cluster_size = 100;
  auto index = InMemoryIvfIndex::Build(options, ds.data.data(), 3000,
                                       ids).value();
  EXPECT_EQ(index->num_partitions(), 30u);
  EXPECT_GT(index->MemoryBytes(), 3000u * 16 * sizeof(float));
  auto truth = BruteForceGroundTruth(ds, 10, 1);
  double recall = 0;
  for (size_t q = 0; q < 20; ++q) {
    auto got = index->Search(ds.query(q), 10, 8, nullptr).value();
    recall += RecallAtK(got, truth[q]);
  }
  EXPECT_GE(recall / 20, 0.9);
}

TEST(InMemoryIndexTest, MemoryTrackedAndReleased) {
  const size_t before =
      MemoryTracker::Global().Current(MemoryCategory::kIndexData);
  {
    Dataset ds =
        GenerateDataset({"mem2", 8, Metric::kL2, 1000, 5, 8, 0.2f, 9});
    std::vector<uint64_t> ids(1000);
    std::iota(ids.begin(), ids.end(), 1);
    InMemoryIvfIndex::Options options;
    options.dim = 8;
    auto index = InMemoryIvfIndex::Build(options, ds.data.data(), 1000,
                                         ids).value();
    EXPECT_GT(MemoryTracker::Global().Current(MemoryCategory::kIndexData),
              before);
  }
  EXPECT_EQ(MemoryTracker::Global().Current(MemoryCategory::kIndexData),
            before);
}

// --- Maintenance policy ---

TEST(MaintenanceTest, RebuildTriggersAtGrowthThreshold) {
  IndexStats stats;
  stats.n_partitions = 10;
  stats.base_avg_partition_size = 100;
  RebuildPolicy policy;
  policy.growth_threshold = 0.5;
  stats.avg_partition_size = 149;
  EXPECT_FALSE(ShouldFullRebuild(stats, policy));
  stats.avg_partition_size = 150;
  EXPECT_TRUE(ShouldFullRebuild(stats, policy));
}

TEST(MaintenanceTest, NeverBuiltIndexWantsBuild) {
  IndexStats stats;
  stats.n_partitions = 0;
  stats.total_vectors = 5;
  EXPECT_TRUE(ShouldFullRebuild(stats, RebuildPolicy{}));
  stats.total_vectors = 0;
  EXPECT_FALSE(ShouldFullRebuild(stats, RebuildPolicy{}));
}

}  // namespace
}  // namespace micronn

// Tests for the background index maintainer (Figure 1's Index Monitor).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/maintainer.h"
#include "datagen/dataset.h"

namespace micronn {
namespace {

class MaintainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_maint_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    ds_ = GenerateDataset({"m", 8, Metric::kL2, 3000, 8, 16, 0.2f, 88});
    DbOptions options;
    options.dim = 8;
    options.target_cluster_size = 50;
    db_ = DB::Open(dir_ / "db.mnn", options).value();
    std::vector<UpsertRequest> batch;
    for (size_t i = 0; i < ds_.spec.n; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.assign(ds_.row(i), ds_.row(i) + 8);
      batch.push_back(std::move(req));
    }
    EXPECT_TRUE(db_->Upsert(batch).ok());
    EXPECT_TRUE(db_->BuildIndex().ok());
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  Dataset ds_;
  std::unique_ptr<DB> db_;
};

TEST_F(MaintainerTest, FlushesDeltaWhenTriggerReached) {
  BackgroundMaintainer::Options options;
  options.interval = std::chrono::milliseconds(20);
  options.delta_trigger = 100;
  BackgroundMaintainer maintainer(db_.get(), options);
  // Below the trigger: nothing should happen.
  std::vector<UpsertRequest> batch;
  for (int i = 0; i < 50; ++i) {
    UpsertRequest req;
    req.asset_id = "n" + std::to_string(i);
    req.vector.assign(ds_.row(i), ds_.row(i) + 8);
    batch.push_back(std::move(req));
  }
  ASSERT_TRUE(db_->Upsert(batch).ok());
  maintainer.TriggerNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(maintainer.maintenance_runs(), 0u);
  EXPECT_EQ(db_->GetIndexStats().value().delta_count, 50u);
  // Cross the trigger: the maintainer flushes within a few intervals.
  batch.clear();
  for (int i = 50; i < 150; ++i) {
    UpsertRequest req;
    req.asset_id = "n" + std::to_string(i);
    req.vector.assign(ds_.row(i), ds_.row(i) + 8);
    batch.push_back(std::move(req));
  }
  ASSERT_TRUE(db_->Upsert(batch).ok());
  maintainer.TriggerNow();
  for (int spin = 0; spin < 100 && maintainer.maintenance_runs() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(maintainer.maintenance_runs(), 1u);
  EXPECT_GE(maintainer.total_flushed(), 150u);
  EXPECT_EQ(db_->GetIndexStats().value().delta_count, 0u);
  maintainer.Stop();
}

TEST_F(MaintainerTest, SearchesStayCorrectWhileMaintainerRuns) {
  BackgroundMaintainer::Options options;
  options.interval = std::chrono::milliseconds(5);
  options.delta_trigger = 20;
  BackgroundMaintainer maintainer(db_.get(), options);
  // Stream upserts while searching; the maintainer flushes concurrently.
  for (int round = 0; round < 20; ++round) {
    std::vector<UpsertRequest> batch;
    for (int i = 0; i < 25; ++i) {
      UpsertRequest req;
      req.asset_id = "live" + std::to_string(round * 25 + i);
      req.vector.assign(ds_.row((round * 25 + i) % ds_.spec.n),
                        ds_.row((round * 25 + i) % ds_.spec.n) + 8);
      batch.push_back(std::move(req));
    }
    ASSERT_TRUE(db_->Upsert(batch).ok());
    SearchRequest req;
    req.query.assign(ds_.query(round % 8), ds_.query(round % 8) + 8);
    req.k = 5;
    auto resp = db_->Search(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->items.size(), 5u);
  }
  maintainer.Stop();
  // Everything the maintainer flushed must still be findable.
  SearchRequest req;
  req.query.assign(ds_.row(0), ds_.row(0) + 8);
  req.k = 1;
  req.nprobe = 8;
  EXPECT_FLOAT_EQ(db_->Search(req).value().items[0].distance, 0.f);
}

TEST_F(MaintainerTest, StopIsIdempotentAndFast) {
  BackgroundMaintainer::Options options;
  options.interval = std::chrono::hours(1);  // would never wake on its own
  BackgroundMaintainer maintainer(db_.get(), options);
  maintainer.Stop();
  maintainer.Stop();  // second stop is a no-op
}

}  // namespace
}  // namespace micronn

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "numerics/aligned_buffer.h"
#include "numerics/distance.h"
#include "numerics/metric.h"
#include "numerics/topk.h"
#include "numerics/vector_codec.h"

namespace micronn {
namespace {

std::vector<float> RandomVec(Rng* rng, size_t d) {
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng->NextGaussian());
  return v;
}

TEST(AlignedBufferTest, AlignmentAndZeroInit) {
  AlignedFloatBuffer buf(1000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 0u);
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.f);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedFloatBuffer a(16);
  a[3] = 7.f;
  AlignedFloatBuffer b(std::move(a));
  EXPECT_EQ(b[3], 7.f);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(DistanceTest, ScalarL2Basics) {
  const float a[] = {1.f, 2.f, 3.f};
  const float b[] = {4.f, 6.f, 3.f};
  EXPECT_FLOAT_EQ(internal::L2SquaredScalar(a, b, 3), 9.f + 16.f);
  EXPECT_FLOAT_EQ(internal::DotScalar(a, b, 3), 4.f + 12.f + 9.f);
}

// Parameterized SIMD-vs-scalar parity sweep over dimensions, including
// non-multiples of the vector width.
class SimdParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SimdParityTest, L2MatchesScalar) {
  const size_t d = GetParam();
  Rng rng(d * 31 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = RandomVec(&rng, d);
    const auto b = RandomVec(&rng, d);
    const float ref = internal::L2SquaredScalar(a.data(), b.data(), d);
    const float got = L2Squared(a.data(), b.data(), d);
    EXPECT_NEAR(got, ref, 1e-3f * (1.f + std::fabs(ref)))
        << "d=" << d << " level=" << SimdLevelName(ActiveSimdLevel());
  }
}

TEST_P(SimdParityTest, DotMatchesScalar) {
  const size_t d = GetParam();
  Rng rng(d * 17 + 5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = RandomVec(&rng, d);
    const auto b = RandomVec(&rng, d);
    const float ref = internal::DotScalar(a.data(), b.data(), d);
    const float got = Dot(a.data(), b.data(), d);
    EXPECT_NEAR(got, ref, 1e-3f * (1.f + std::fabs(ref))) << "d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SimdParityTest,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 17, 31, 32,
                                           63, 96, 100, 128, 200, 256, 384,
                                           512, 784, 960));

TEST(DistanceTest, AllSimdLevelsAgree) {
  const SimdLevel original = ActiveSimdLevel();
  Rng rng(99);
  const size_t d = 301;
  const auto a = RandomVec(&rng, d);
  const auto b = RandomVec(&rng, d);
  SetSimdLevel(SimdLevel::kScalar);
  const float scalar = L2Squared(a.data(), b.data(), d);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  SetSimdLevel(SimdLevel::kAvx2);
  const float avx2 = L2Squared(a.data(), b.data(), d);
  SetSimdLevel(SimdLevel::kAvx512);
  const float avx512 = L2Squared(a.data(), b.data(), d);
  SetSimdLevel(original);
  EXPECT_NEAR(scalar, avx2, 1e-3f * (1.f + scalar));
  EXPECT_NEAR(scalar, avx512, 1e-3f * (1.f + scalar));
}

TEST(DistanceTest, MetricConventions) {
  // Distance must be "smaller = more similar" under every metric.
  const float q[] = {1.f, 0.f};
  const float near_v[] = {0.9f, 0.1f};
  const float far_v[] = {-1.f, 0.f};
  for (Metric m : {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    EXPECT_LT(Distance(m, q, near_v, 2), Distance(m, q, far_v, 2))
        << MetricName(m);
  }
}

TEST(DistanceTest, CosineOfNormalizedSelfIsZero) {
  std::vector<float> v = {0.6f, 0.8f};  // already unit norm
  EXPECT_NEAR(Distance(Metric::kCosine, v.data(), v.data(), 2), 0.f, 1e-6f);
}

TEST(DistanceTest, OneToManyMatchesPointwise) {
  Rng rng(5);
  const size_t d = 64, n = 37;
  const auto q = RandomVec(&rng, d);
  std::vector<float> data;
  for (size_t i = 0; i < n; ++i) {
    const auto v = RandomVec(&rng, d);
    data.insert(data.end(), v.begin(), v.end());
  }
  std::vector<float> out(n);
  DistanceOneToMany(Metric::kL2, q.data(), data.data(), n, d, out.data());
  for (size_t i = 0; i < n; ++i) {
    const float ref = L2Squared(q.data(), data.data() + i * d, d);
    EXPECT_FLOAT_EQ(out[i], ref) << i;
  }
}

TEST(DistanceTest, ManyToManyMatchesPointwise) {
  Rng rng(6);
  const size_t d = 48, n = 600, nq = 5;  // n > row block to cross blocks
  std::vector<float> queries, data;
  for (size_t i = 0; i < nq; ++i) {
    const auto v = RandomVec(&rng, d);
    queries.insert(queries.end(), v.begin(), v.end());
  }
  for (size_t i = 0; i < n; ++i) {
    const auto v = RandomVec(&rng, d);
    data.insert(data.end(), v.begin(), v.end());
  }
  std::vector<float> out(nq * n);
  DistanceManyToMany(Metric::kCosine, queries.data(), nq, data.data(), n, d,
                     out.data());
  for (size_t i = 0; i < nq; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const float ref = Distance(Metric::kCosine, queries.data() + i * d,
                                 data.data() + j * d, d);
      EXPECT_NEAR(out[i * n + j], ref, 1e-5f) << i << "," << j;
    }
  }
}

TEST(TopKHeapTest, KeepsKSmallest) {
  TopKHeap heap(3);
  for (uint64_t id = 0; id < 10; ++id) {
    heap.Push(id, static_cast<float>(10 - id));  // distances 10..1
  }
  auto out = heap.TakeSorted();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 9u);  // distance 1
  EXPECT_EQ(out[1].id, 8u);
  EXPECT_EQ(out[2].id, 7u);
}

TEST(TopKHeapTest, WorstDistanceIsPruningBound) {
  TopKHeap heap(2);
  heap.Push(1, 5.f);
  heap.Push(2, 3.f);
  EXPECT_TRUE(heap.full());
  EXPECT_FLOAT_EQ(heap.WorstDistance(), 5.f);
  EXPECT_TRUE(heap.WouldAccept(4.f));
  EXPECT_FALSE(heap.WouldAccept(6.f));
  heap.Push(3, 1.f);
  EXPECT_FLOAT_EQ(heap.WorstDistance(), 3.f);
}

TEST(TopKHeapTest, FewerThanKItems) {
  TopKHeap heap(10);
  heap.Push(4, 2.f);
  heap.Push(5, 1.f);
  auto out = heap.TakeSorted();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 5u);
}

TEST(TopKHeapTest, SortedOutputTiesBrokenById) {
  TopKHeap heap(4);
  heap.Push(9, 1.f);
  heap.Push(3, 1.f);
  heap.Push(7, 1.f);
  auto out = heap.TakeSorted();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 3u);
  EXPECT_EQ(out[1].id, 7u);
  EXPECT_EQ(out[2].id, 9u);
}

// Property: a heap fed any stream keeps exactly the k smallest elements.
class TopKPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKPropertyTest, MatchesSortReference) {
  const size_t k = GetParam();
  Rng rng(k * 101 + 3);
  std::vector<Neighbor> all;
  TopKHeap heap(k);
  for (uint64_t id = 0; id < 500; ++id) {
    const float dist = rng.NextFloat();
    all.push_back({id, dist});
    heap.Push(id, dist);
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  all.resize(std::min(k, all.size()));
  auto got = heap.TakeSorted();
  ASSERT_EQ(got.size(), all.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, all[i].id) << "k=" << k << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKPropertyTest,
                         ::testing::Values(1, 2, 5, 10, 100, 499, 500, 600));

TEST(TopKHeapTest, MergeHeapsEqualsGlobalTopK) {
  Rng rng(77);
  const size_t k = 10;
  std::vector<TopKHeap> heaps(4, TopKHeap(k));
  TopKHeap global(k);
  for (uint64_t id = 0; id < 1000; ++id) {
    const float dist = rng.NextFloat();
    heaps[id % 4].Push(id, dist);
    global.Push(id, dist);
  }
  auto merged = MergeHeapsSorted(heaps, k);
  auto expected = global.TakeSorted();
  ASSERT_EQ(merged.size(), expected.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].id, expected[i].id);
  }
}

TEST(VectorCodecTest, RoundTrip) {
  std::vector<float> v = {1.5f, -2.25f, 0.f, 1e-30f, 3e30f};
  const std::string blob = EncodeVector(v);
  EXPECT_EQ(blob.size(), v.size() * sizeof(float));
  std::vector<float> out;
  ASSERT_TRUE(DecodeVector(blob, &out));
  EXPECT_EQ(out, v);
  float fixed[5];
  ASSERT_TRUE(DecodeVector(blob, 5, fixed));
  EXPECT_EQ(fixed[1], -2.25f);
  EXPECT_FALSE(DecodeVector(blob, 4, fixed));
}

}  // namespace
}  // namespace micronn

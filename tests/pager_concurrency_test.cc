// Stress tests for the concurrent storage read path: N reader threads
// scanning while a writer commits batches (with the commit fsync enabled)
// and auto-checkpointing fires. Stronger than the engine-level smoke test:
// the writer *waits* for reader progress after every commit, so a read
// path that stalls behind commits deadlocks the test (caught by the
// timeout) instead of passing vacuously, and every scan cross-checks three
// views of the committed state to detect torn snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "storage/engine.h"
#include "storage/key_encoding.h"

namespace micronn {
namespace {

class PagerConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_pagercc_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "db";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

// Commits `rows` new rows into "t" and records the new expected total in
// the same transaction under meta/"count", so any snapshot must observe
// the row set and the counter in agreement.
Status CommitBatch(StorageEngine* engine, uint64_t start, uint64_t rows) {
  MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<WriteTransaction> txn,
                           engine->BeginWrite());
  Result<BTree> t = txn->OpenOrCreateTable("t");
  if (!t.ok()) {
    engine->Rollback(std::move(txn));
    return t.status();
  }
  for (uint64_t i = start; i < start + rows; ++i) {
    Status st = t->Put(key::U64(i), "row" + std::to_string(i));
    if (!st.ok()) {
      engine->Rollback(std::move(txn));
      return st;
    }
  }
  Result<BTree> meta = txn->OpenOrCreateTable("meta");
  if (!meta.ok()) {
    engine->Rollback(std::move(txn));
    return meta.status();
  }
  Status st = meta->Put("count", std::to_string(start + rows));
  if (!st.ok()) {
    engine->Rollback(std::move(txn));
    return st;
  }
  txn->AddRowDelta("t", static_cast<int64_t>(rows));
  return engine->Commit(std::move(txn));
}

// One reader scan: returns false (torn snapshot) if the full scan of "t",
// the meta/"count" value, and the catalog row_count disagree with each
// other or with the batch invariant.
bool ConsistentScan(StorageEngine* engine, uint64_t batch_rows) {
  auto txn_or = engine->BeginRead();
  if (!txn_or.ok()) return false;
  std::unique_ptr<ReadTransaction> txn = std::move(*txn_or);

  auto meta = txn->OpenTable("meta");
  if (!meta.ok()) return false;
  auto count_val = meta->Get("count");
  if (!count_val.ok() || !count_val->has_value()) return false;
  const uint64_t expected = std::stoull(**count_val);

  auto t = txn->OpenTable("t");
  if (!t.ok()) return false;
  auto info = txn->GetTableInfo("t");
  if (!info.ok() || info->row_count != expected) return false;

  BTreeCursor c = t->NewCursor();
  if (!c.SeekToFirst().ok()) return false;
  uint64_t scanned = 0;
  while (c.Valid()) {
    ++scanned;
    if (!c.Next().ok()) return false;
  }
  return scanned == expected && expected % batch_rows == 0;
}

TEST_F(PagerConcurrencyTest, ReadersProgressDuringSyncedCommits) {
  PagerOptions options;
  // Every commit fdatasyncs the WAL: with the old global-mutex design each
  // fsync stalled the whole read path; now it must not.
  options.sync_on_commit = true;
  auto engine = StorageEngine::Open(path_, options).value();

  constexpr uint64_t kBatchRows = 50;
  constexpr int kBatches = 20;
  ASSERT_TRUE(CommitBatch(engine.get(), 0, kBatchRows).ok());
  const uint64_t seq_after_setup = engine->last_committed_seq();

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<uint64_t> scans{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        if (!ConsistentScan(engine.get(), kBatchRows)) {
          ++torn;
        }
        ++scans;
      }
    });
  }

  // The writer demands reader progress after every commit: if no reader
  // completes a scan while the writer sits between two commits, the test
  // fails on wait_failures rather than hanging.
  int wait_failures = 0;
  for (int b = 1; b <= kBatches; ++b) {
    const uint64_t scans_before = scans.load();
    ASSERT_TRUE(CommitBatch(engine.get(), b * kBatchRows, kBatchRows).ok());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (scans.load() == scans_before) {
      if (std::chrono::steady_clock::now() > deadline) {
        ++wait_failures;
        break;
      }
      std::this_thread::yield();
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(wait_failures, 0);
  EXPECT_GE(scans.load(), static_cast<uint64_t>(kBatches));
  // Each commit advances the sequence by exactly one.
  EXPECT_EQ(engine->last_committed_seq(), seq_after_setup + kBatches);

  // Final state: everything committed is visible.
  auto txn = engine->BeginRead().value();
  EXPECT_EQ(txn->GetTableInfo("t").value().row_count,
            kBatchRows * (1 + kBatches));
}

TEST_F(PagerConcurrencyTest, NoTornSnapshotUnderAutoCheckpoint) {
  PagerOptions options;
  // Tiny WAL threshold so auto-checkpoint wants to fire throughout the
  // run; it may only succeed in reader gaps, never under a live snapshot.
  options.auto_checkpoint_frames = 32;
  auto engine = StorageEngine::Open(path_, options).value();

  constexpr uint64_t kBatchRows = 25;
  constexpr int kBatches = 40;
  ASSERT_TRUE(CommitBatch(engine.get(), 0, kBatchRows).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<uint64_t> scans{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        if (!ConsistentScan(engine.get(), kBatchRows)) {
          ++torn;
        }
        ++scans;
        // Brief registry gaps give the auto-checkpoint a chance to run.
        std::this_thread::yield();
      }
    });
  }

  for (int b = 1; b <= kBatches; ++b) {
    ASSERT_TRUE(CommitBatch(engine.get(), b * kBatchRows, kBatchRows).ok());
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(scans.load(), 0u);

  // Deterministic checkpoint coverage: whether or not the auto-checkpoint
  // found an idle window during the run, it must succeed now, and the
  // folded pages must survive reopen without the WAL.
  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_GT(engine->io_stats().checkpoint_pages.load(), 0u);
  ASSERT_TRUE(engine->Close().ok());
  ASSERT_TRUE(RemoveFileIfExists(path_ + "-wal").ok());

  auto reopened = StorageEngine::Open(path_).value();
  auto txn = reopened->BeginRead().value();
  EXPECT_EQ(txn->GetTableInfo("t").value().row_count,
            kBatchRows * (1 + kBatches));
}

TEST_F(PagerConcurrencyTest, SnapshotStableAcrossManyCommits) {
  auto engine = StorageEngine::Open(path_).value();
  constexpr uint64_t kBatchRows = 10;
  ASSERT_TRUE(CommitBatch(engine.get(), 0, kBatchRows).ok());

  // Pin one snapshot, then rescan it repeatedly while 50 commits land:
  // every rescan must return identical state (snapshot stability is the
  // strongest form of "no torn reads").
  auto pinned = engine->BeginRead().value();
  std::atomic<bool> stop{false};
  std::atomic<int> divergences{0};
  std::thread rescanner([&] {
    while (!stop.load()) {
      auto t = pinned->OpenTable("t");
      if (!t.ok()) {
        ++divergences;
        continue;
      }
      BTreeCursor c = t->NewCursor();
      if (!c.SeekToFirst().ok()) {
        ++divergences;
        continue;
      }
      uint64_t n = 0;
      while (c.Valid()) {
        ++n;
        if (!c.Next().ok()) break;
      }
      if (n != kBatchRows) ++divergences;
    }
  });

  for (int b = 1; b <= 50; ++b) {
    ASSERT_TRUE(CommitBatch(engine.get(), b * kBatchRows, kBatchRows).ok());
  }
  stop.store(true);
  rescanner.join();
  EXPECT_EQ(divergences.load(), 0);

  // A fresh snapshot sees all 51 batches.
  auto fresh = engine->BeginRead().value();
  EXPECT_EQ(fresh->GetTableInfo("t").value().row_count, kBatchRows * 51);
}

// Regression documentation for the current checkpoint contract: the
// checkpoint yields to *any* concurrent activity. Later PRs may relax
// "Busy whenever a reader exists" (e.g. fold only frames older than the
// oldest snapshot); when they do, this test is the semantics they are
// changing and must be updated deliberately.
TEST_F(PagerConcurrencyTest, CheckpointYieldsToReadersAndWriters) {
  auto engine = StorageEngine::Open(path_).value();
  ASSERT_TRUE(CommitBatch(engine.get(), 0, 10).ok());

  {
    // Any live reader snapshot — even one at the newest commit — makes the
    // checkpoint return Busy.
    auto reader = engine->BeginRead().value();
    Status st = engine->Checkpoint();
    EXPECT_TRUE(st.IsBusy()) << st.ToString();
  }
  {
    // Same for an open write transaction.
    auto writer = engine->BeginWrite().value();
    Status st = engine->Checkpoint();
    EXPECT_TRUE(st.IsBusy()) << st.ToString();
    engine->Rollback(std::move(writer));
  }
  // With the system idle the checkpoint proceeds.
  EXPECT_TRUE(engine->Checkpoint().ok());
  // And an empty WAL makes it a no-op that still reports success.
  EXPECT_TRUE(engine->Checkpoint().ok());
}

}  // namespace
}  // namespace micronn

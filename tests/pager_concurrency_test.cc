// Stress tests for the concurrent storage read path: N reader threads
// scanning while a writer commits batches (with the commit fsync enabled)
// and auto-checkpointing fires. Stronger than the engine-level smoke test:
// the writer *waits* for reader progress after every commit, so a read
// path that stalls behind commits deadlocks the test (caught by the
// timeout) instead of passing vacuously, and every scan cross-checks three
// views of the committed state to detect torn snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "storage/engine.h"
#include "storage/key_encoding.h"

namespace micronn {
namespace {

class PagerConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_pagercc_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "db";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

// Commits `rows` new rows into "t" and records the new expected total in
// the same transaction under meta/"count", so any snapshot must observe
// the row set and the counter in agreement.
Status CommitBatch(StorageEngine* engine, uint64_t start, uint64_t rows) {
  MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<WriteTransaction> txn,
                           engine->BeginWrite());
  Result<BTree> t = txn->OpenOrCreateTable("t");
  if (!t.ok()) {
    engine->Rollback(std::move(txn));
    return t.status();
  }
  for (uint64_t i = start; i < start + rows; ++i) {
    Status st = t->Put(key::U64(i), "row" + std::to_string(i));
    if (!st.ok()) {
      engine->Rollback(std::move(txn));
      return st;
    }
  }
  Result<BTree> meta = txn->OpenOrCreateTable("meta");
  if (!meta.ok()) {
    engine->Rollback(std::move(txn));
    return meta.status();
  }
  Status st = meta->Put("count", std::to_string(start + rows));
  if (!st.ok()) {
    engine->Rollback(std::move(txn));
    return st;
  }
  txn->AddRowDelta("t", static_cast<int64_t>(rows));
  return engine->Commit(std::move(txn));
}

// One reader scan: returns false (torn snapshot) if the full scan of "t",
// the meta/"count" value, and the catalog row_count disagree with each
// other or with the batch invariant.
bool ConsistentScan(StorageEngine* engine, uint64_t batch_rows) {
  auto txn_or = engine->BeginRead();
  if (!txn_or.ok()) return false;
  std::unique_ptr<ReadTransaction> txn = std::move(*txn_or);

  auto meta = txn->OpenTable("meta");
  if (!meta.ok()) return false;
  auto count_val = meta->Get("count");
  if (!count_val.ok() || !count_val->has_value()) return false;
  const uint64_t expected = std::stoull(**count_val);

  auto t = txn->OpenTable("t");
  if (!t.ok()) return false;
  auto info = txn->GetTableInfo("t");
  if (!info.ok() || info->row_count != expected) return false;

  BTreeCursor c = t->NewCursor();
  if (!c.SeekToFirst().ok()) return false;
  uint64_t scanned = 0;
  while (c.Valid()) {
    ++scanned;
    if (!c.Next().ok()) return false;
  }
  return scanned == expected && expected % batch_rows == 0;
}

TEST_F(PagerConcurrencyTest, ReadersProgressDuringSyncedCommits) {
  PagerOptions options;
  // Every commit fdatasyncs the WAL: with the old global-mutex design each
  // fsync stalled the whole read path; now it must not.
  options.sync_on_commit = true;
  auto engine = StorageEngine::Open(path_, options).value();

  constexpr uint64_t kBatchRows = 50;
  constexpr int kBatches = 20;
  ASSERT_TRUE(CommitBatch(engine.get(), 0, kBatchRows).ok());
  const uint64_t seq_after_setup = engine->last_committed_seq();

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<uint64_t> scans{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        if (!ConsistentScan(engine.get(), kBatchRows)) {
          ++torn;
        }
        ++scans;
      }
    });
  }

  // The writer demands reader progress after every commit: if no reader
  // completes a scan while the writer sits between two commits, the test
  // fails on wait_failures rather than hanging.
  int wait_failures = 0;
  for (int b = 1; b <= kBatches; ++b) {
    const uint64_t scans_before = scans.load();
    ASSERT_TRUE(CommitBatch(engine.get(), b * kBatchRows, kBatchRows).ok());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (scans.load() == scans_before) {
      if (std::chrono::steady_clock::now() > deadline) {
        ++wait_failures;
        break;
      }
      std::this_thread::yield();
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(wait_failures, 0);
  EXPECT_GE(scans.load(), static_cast<uint64_t>(kBatches));
  // Each commit advances the sequence by exactly one.
  EXPECT_EQ(engine->last_committed_seq(), seq_after_setup + kBatches);

  // Final state: everything committed is visible.
  auto txn = engine->BeginRead().value();
  EXPECT_EQ(txn->GetTableInfo("t").value().row_count,
            kBatchRows * (1 + kBatches));
}

TEST_F(PagerConcurrencyTest, NoTornSnapshotUnderAutoCheckpoint) {
  PagerOptions options;
  // Tiny WAL threshold so auto-checkpoint wants to fire throughout the
  // run; it may only succeed in reader gaps, never under a live snapshot.
  options.auto_checkpoint_frames = 32;
  auto engine = StorageEngine::Open(path_, options).value();

  constexpr uint64_t kBatchRows = 25;
  constexpr int kBatches = 40;
  ASSERT_TRUE(CommitBatch(engine.get(), 0, kBatchRows).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<uint64_t> scans{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        if (!ConsistentScan(engine.get(), kBatchRows)) {
          ++torn;
        }
        ++scans;
        // Brief registry gaps give the auto-checkpoint a chance to run.
        std::this_thread::yield();
      }
    });
  }

  for (int b = 1; b <= kBatches; ++b) {
    ASSERT_TRUE(CommitBatch(engine.get(), b * kBatchRows, kBatchRows).ok());
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(scans.load(), 0u);

  // Deterministic checkpoint coverage: whether or not the auto-checkpoint
  // found an idle window during the run, it must succeed now, and the
  // folded pages must survive reopen without the WAL.
  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_GT(engine->io_stats().checkpoint_pages.load(), 0u);
  ASSERT_TRUE(engine->Close().ok());
  ASSERT_TRUE(RemoveFileIfExists(path_ + "-wal").ok());

  auto reopened = StorageEngine::Open(path_).value();
  auto txn = reopened->BeginRead().value();
  EXPECT_EQ(txn->GetTableInfo("t").value().row_count,
            kBatchRows * (1 + kBatches));
}

TEST_F(PagerConcurrencyTest, SnapshotStableAcrossManyCommits) {
  auto engine = StorageEngine::Open(path_).value();
  constexpr uint64_t kBatchRows = 10;
  ASSERT_TRUE(CommitBatch(engine.get(), 0, kBatchRows).ok());

  // Pin one snapshot, then rescan it repeatedly while 50 commits land:
  // every rescan must return identical state (snapshot stability is the
  // strongest form of "no torn reads").
  auto pinned = engine->BeginRead().value();
  std::atomic<bool> stop{false};
  std::atomic<int> divergences{0};
  std::thread rescanner([&] {
    while (!stop.load()) {
      auto t = pinned->OpenTable("t");
      if (!t.ok()) {
        ++divergences;
        continue;
      }
      BTreeCursor c = t->NewCursor();
      if (!c.SeekToFirst().ok()) {
        ++divergences;
        continue;
      }
      uint64_t n = 0;
      while (c.Valid()) {
        ++n;
        if (!c.Next().ok()) break;
      }
      if (n != kBatchRows) ++divergences;
    }
  });

  for (int b = 1; b <= 50; ++b) {
    ASSERT_TRUE(CommitBatch(engine.get(), b * kBatchRows, kBatchRows).ok());
  }
  stop.store(true);
  rescanner.join();
  EXPECT_EQ(divergences.load(), 0);

  // A fresh snapshot sees all 51 batches.
  auto fresh = engine->BeginRead().value();
  EXPECT_EQ(fresh->GetTableInfo("t").value().row_count, kBatchRows * 51);
}

// The incremental checkpoint contract (deliberately supersedes the old
// "Busy whenever a reader exists" regression test): a checkpoint under a
// pinned reader snapshot folds every frame at-or-below the reader's
// horizon, advances the persistent backfill watermark, and returns Ok.
// Only an active writer still yields Busy, and the WAL is reset only once
// all frames are folded and no reader remains.
TEST_F(PagerConcurrencyTest, CheckpointProgressesUnderPinnedReader) {
  auto engine = StorageEngine::Open(path_).value();
  ASSERT_TRUE(CommitBatch(engine.get(), 0, 10).ok());
  Pager* pager = engine->pager();

  // Pin a snapshot at the current horizon, then land two commits whose
  // frames lie beyond it.
  auto pinned = engine->BeginRead().value();
  const uint64_t horizon_frames = pager->wal_frame_count();
  ASSERT_GT(horizon_frames, 0u);
  ASSERT_TRUE(CommitBatch(engine.get(), 10, 10).ok());
  ASSERT_TRUE(CommitBatch(engine.get(), 20, 10).ok());
  const uint64_t all_frames = pager->wal_frame_count();
  ASSERT_GT(all_frames, horizon_frames);

  // Partial checkpoint: Ok (not Busy), folds exactly the prefix at-or-
  // below the pinned horizon, leaves the tail and the log itself alone.
  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_EQ(pager->wal_backfill_watermark(), horizon_frames);
  EXPECT_EQ(pager->wal_frame_count(), all_frames);
  EXPECT_GT(engine->io_stats().checkpoint_pages.load(), 0u);

  // Re-running with the horizon unchanged is a cheap no-op, not an error.
  const uint64_t pages_after_first =
      engine->io_stats().checkpoint_pages.load();
  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_EQ(pager->wal_backfill_watermark(), horizon_frames);
  EXPECT_EQ(engine->io_stats().checkpoint_pages.load(), pages_after_first);

  // The pinned snapshot still reads its own version after the fold.
  {
    auto t = pinned->OpenTable("t").value();
    BTreeCursor c = t.NewCursor();
    ASSERT_TRUE(c.SeekToFirst().ok());
    uint64_t n = 0;
    while (c.Valid()) {
      ++n;
      ASSERT_TRUE(c.Next().ok());
    }
    EXPECT_EQ(n, 10u);
  }

  // An open write transaction still makes the checkpoint yield.
  {
    auto writer = engine->BeginWrite().value();
    Status st = engine->Checkpoint();
    EXPECT_TRUE(st.IsBusy()) << st.ToString();
    engine->Rollback(std::move(writer));
  }

  // Horizon released: the next checkpoint folds the tail and resets.
  pinned.reset();
  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_EQ(pager->wal_frame_count(), 0u);
  EXPECT_EQ(pager->wal_backfill_watermark(), 0u);

  // Everything folded must live in the main file: reopen without the WAL.
  ASSERT_TRUE(engine->Close().ok());
  ASSERT_TRUE(RemoveFileIfExists(path_ + "-wal").ok());
  auto reopened = StorageEngine::Open(path_).value();
  auto txn = reopened->BeginRead().value();
  EXPECT_EQ(txn->GetTableInfo("t").value().row_count, 30u);
}

TEST_F(PagerConcurrencyTest, WalBackpressureBoundsWalGrowth) {
  PagerOptions options;
  options.auto_checkpoint_frames = 0;  // isolate the backpressure path
  options.wal_backpressure_frames = 64;
  options.wal_backpressure_wait_ms = 5000;
  auto engine = StorageEngine::Open(path_, options).value();
  Pager* pager = engine->pager();

  constexpr uint64_t kBatchRows = 20;
  ASSERT_TRUE(CommitBatch(engine.get(), 0, kBatchRows).ok());

  // A transient reader churns throughout: the blocking checkpoint must
  // reclaim the log in registry gaps rather than be starved by them.
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    while (!stop.load()) {
      if (!ConsistentScan(engine.get(), kBatchRows)) {
        ++torn;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  uint64_t max_frames = 0;
  for (int b = 1; b <= 60; ++b) {
    ASSERT_TRUE(CommitBatch(engine.get(), b * kBatchRows, kBatchRows).ok());
    max_frames = std::max(max_frames, pager->wal_frame_count());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn.load(), 0);

  // Every commit that left the WAL past the threshold performed a
  // blocking full checkpoint before returning, so the post-commit frame
  // count can never run away: at most the threshold plus the frames the
  // triggering commit itself appended (with generous slack for a fold
  // that timed out against the reader and settled for partial backfill).
  EXPECT_LE(max_frames, options.wal_backpressure_frames + 64)
      << "WAL kept growing past the backpressure threshold";

  auto txn = engine->BeginRead().value();
  EXPECT_EQ(txn->GetTableInfo("t").value().row_count, kBatchRows * 61);
}

TEST_F(PagerConcurrencyTest, BackpressureTimesOutUnderPinnedReader) {
  PagerOptions options;
  options.auto_checkpoint_frames = 0;
  options.wal_backpressure_frames = 8;
  options.wal_backpressure_wait_ms = 50;  // keep the test fast
  auto engine = StorageEngine::Open(path_, options).value();
  Pager* pager = engine->pager();

  ASSERT_TRUE(CommitBatch(engine.get(), 0, 10).ok());
  auto pinned = engine->BeginRead().value();
  const uint64_t horizon_frames = pager->wal_frame_count();

  // Commits past the threshold must not deadlock on the pinned snapshot:
  // each blocking checkpoint folds up to the pinned horizon, times out
  // waiting for the registry to drain, and lets the commit return.
  for (int b = 1; b <= 5; ++b) {
    ASSERT_TRUE(CommitBatch(engine.get(), b * 10, 10).ok());
  }
  EXPECT_GT(pager->wal_frame_count(), options.wal_backpressure_frames);
  EXPECT_EQ(pager->wal_backfill_watermark(), horizon_frames);

  // Once the pin lifts, the next triggering commit reclaims the log.
  pinned.reset();
  ASSERT_TRUE(CommitBatch(engine.get(), 60, 10).ok());
  EXPECT_LE(pager->wal_frame_count(), options.wal_backpressure_frames);
}

// Commits rows into `table` without the meta/"count" invariant, so
// multiple writer threads can interleave commits freely.
Status CommitRows(StorageEngine* engine, const std::string& table,
                  uint64_t start, uint64_t rows) {
  MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<WriteTransaction> txn,
                           engine->BeginWrite());
  Result<BTree> t = txn->OpenOrCreateTable(table);
  if (!t.ok()) {
    engine->Rollback(std::move(txn));
    return t.status();
  }
  for (uint64_t i = start; i < start + rows; ++i) {
    Status st = t->Put(key::U64(i), "row" + std::to_string(i));
    if (!st.ok()) {
      engine->Rollback(std::move(txn));
      return st;
    }
  }
  txn->AddRowDelta(table, static_cast<int64_t>(rows));
  return engine->Commit(std::move(txn));
}

TEST_F(PagerConcurrencyTest, GroupCommitSharesFsyncsAndStaysDurable) {
  PagerOptions options;
  options.sync_on_commit = true;
  // Keep wal_syncs attributable to commits alone.
  options.auto_checkpoint_frames = 0;
  options.wal_backpressure_frames = 0;
  auto engine = StorageEngine::Open(path_, options).value();
  ASSERT_TRUE(CommitRows(engine.get(), "g", 0, 1).ok());  // create table

  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 25;
  constexpr uint64_t kRowsPerCommit = 4;
  constexpr uint64_t kThreadStride = 1u << 20;

  // Group commit shares fsyncs whenever committers overlap; scheduling
  // decides how often they do, so retry the burst a few times and require
  // that at least one run observes strictly fewer fsyncs than commits
  // (i.e. at least one follower was covered by a leader's sync).
  bool shared = false;
  int rounds = 0;
  for (; rounds < 5 && !shared; ++rounds) {
    const IoStats::View before = engine->io_stats().Snapshot();
    std::atomic<bool> go{false};
    std::atomic<int> failures{0};
    std::vector<std::thread> committers;
    for (int t = 0; t < kThreads; ++t) {
      committers.emplace_back([&, t] {
        while (!go.load()) std::this_thread::yield();
        const uint64_t base =
            static_cast<uint64_t>(t + 1) * kThreadStride +
            static_cast<uint64_t>(rounds) * kCommitsPerThread * kRowsPerCommit;
        for (int c = 0; c < kCommitsPerThread; ++c) {
          if (!CommitRows(engine.get(), "g", base + c * kRowsPerCommit,
                          kRowsPerCommit)
                   .ok()) {
            ++failures;
          }
        }
      });
    }
    go.store(true);
    for (auto& th : committers) th.join();
    ASSERT_EQ(failures.load(), 0);

    const IoStats::View delta = engine->io_stats().Snapshot() - before;
    ASSERT_EQ(delta.commits,
              static_cast<uint64_t>(kThreads) * kCommitsPerThread);
    // Never more than one fsync per commit, and at least one overall.
    EXPECT_LE(delta.wal_syncs, delta.commits);
    EXPECT_GE(delta.wal_syncs, 1u);
    shared = delta.wal_syncs < delta.commits;
  }
  EXPECT_TRUE(shared)
      << "no fsync was ever shared across " << rounds << " rounds of "
      << kThreads << "-thread commit bursts";

  // Durability: freeze the files as a power cut would and recover the
  // copy — every acknowledged commit must survive.
  const uint64_t expected_rows =
      1 + static_cast<uint64_t>(rounds) * kThreads * kCommitsPerThread *
              kRowsPerCommit;
  const std::string crash = (dir_ / "crash_db").string();
  std::filesystem::copy_file(path_, crash);
  std::filesystem::copy_file(path_ + "-wal", crash + "-wal");
  auto recovered = StorageEngine::Open(crash).value();
  auto txn = recovered->BeginRead().value();
  EXPECT_EQ(txn->GetTableInfo("g").value().row_count, expected_rows);
}

// Pipelined group commit batches the *appends*, not just the fsyncs: the
// leader writes every follower's staged frames as one contiguous WAL
// write before the shared sync, so a commit burst must show strictly
// fewer frame-carrying WAL writes than commits (and never more).
TEST_F(PagerConcurrencyTest, PipelinedGroupCommitBatchesAppends) {
  PagerOptions options;
  options.sync_on_commit = true;
  // Keep wal_writes / wal_syncs attributable to commits alone.
  options.auto_checkpoint_frames = 0;
  options.wal_backpressure_frames = 0;
  ASSERT_TRUE(options.commit_pipeline);  // pipelining is the default
  auto engine = StorageEngine::Open(path_, options).value();
  ASSERT_TRUE(CommitRows(engine.get(), "g", 0, 1).ok());  // create table

  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 25;
  constexpr uint64_t kRowsPerCommit = 4;
  constexpr uint64_t kThreadStride = 1u << 20;

  // Scheduling decides how often committers overlap, so retry the burst
  // and require that at least one run observes a multi-commit batch.
  bool batched = false;
  int rounds = 0;
  for (; rounds < 5 && !batched; ++rounds) {
    const IoStats::View before = engine->io_stats().Snapshot();
    std::atomic<bool> go{false};
    std::atomic<int> failures{0};
    std::vector<std::thread> committers;
    for (int t = 0; t < kThreads; ++t) {
      committers.emplace_back([&, t] {
        while (!go.load()) std::this_thread::yield();
        const uint64_t base =
            static_cast<uint64_t>(t + 1) * kThreadStride +
            static_cast<uint64_t>(rounds) * kCommitsPerThread * kRowsPerCommit;
        for (int c = 0; c < kCommitsPerThread; ++c) {
          if (!CommitRows(engine.get(), "g", base + c * kRowsPerCommit,
                          kRowsPerCommit)
                   .ok()) {
            ++failures;
          }
        }
      });
    }
    go.store(true);
    for (auto& th : committers) th.join();
    ASSERT_EQ(failures.load(), 0);

    const IoStats::View delta = engine->io_stats().Snapshot() - before;
    ASSERT_EQ(delta.commits,
              static_cast<uint64_t>(kThreads) * kCommitsPerThread);
    // Staged commits never write per-commit: at most one WAL write per
    // flushed group, so never more writes than commits.
    EXPECT_LE(delta.wal_writes, delta.commits);
    EXPECT_GE(delta.wal_writes, 1u);
    batched = delta.wal_writes < delta.commits;
  }
  EXPECT_TRUE(batched)
      << "no WAL write ever carried more than one commit across " << rounds
      << " rounds of " << kThreads << "-thread bursts";

  // Durability: freeze the files as a power cut would and recover the
  // copy — batching appends must not weaken the acked-commit guarantee.
  const uint64_t expected_rows =
      1 + static_cast<uint64_t>(rounds) * kThreads * kCommitsPerThread *
              kRowsPerCommit;
  const std::string crash = (dir_ / "crash_db").string();
  std::filesystem::copy_file(path_, crash);
  std::filesystem::copy_file(path_ + "-wal", crash + "-wal");
  auto recovered = StorageEngine::Open(crash).value();
  auto txn = recovered->BeginRead().value();
  EXPECT_EQ(txn->GetTableInfo("g").value().row_count, expected_rows);
}

// One wrap-bounds run: commits kBatches batches while a rolling reader
// snapshot (refreshed *after* every commit, so one is always live) pins
// the registry, checkpointing every 4 batches. Returns the peak WAL
// footprint observed after any checkpoint.
struct WrapRunStats {
  uint64_t max_frames = 0;     // peak post-checkpoint frame count
  uintmax_t max_wal_bytes = 0; // peak post-checkpoint WAL file size
  uint32_t final_epoch = 0;
};
WrapRunStats RunRollingPinWorkload(const std::string& path,
                                   bool wal_wraparound) {
  constexpr uint64_t kBatchRows = 20;
  constexpr int kBatches = 40;
  PagerOptions options;
  options.wal_wraparound = wal_wraparound;
  options.auto_checkpoint_frames = 0;  // only the explicit checkpoints
  options.wal_backpressure_frames = 0;
  auto engine = StorageEngine::Open(path, options).value();
  Pager* pager = engine->pager();

  WrapRunStats stats;
  std::unique_ptr<ReadTransaction> pinned;
  for (int b = 0; b < kBatches; ++b) {
    EXPECT_TRUE(CommitBatch(engine.get(), b * kBatchRows, kBatchRows).ok());
    // Rolling pin: drop the old snapshot only after taking the new one,
    // so the registry is never empty and the truncating reset can never
    // fire — only wrap-around can reclaim the log.
    auto next = engine->BeginRead().value();
    pinned = std::move(next);
    EXPECT_EQ(pinned->GetTableInfo("t").value().row_count,
              (b + 1) * kBatchRows);
    // Sample the peak after the commit, before any reclamation.
    stats.max_frames = std::max(stats.max_frames, pager->wal_frame_count());
    stats.max_wal_bytes = std::max(
        stats.max_wal_bytes, std::filesystem::file_size(path + "-wal"));
    if ((b + 1) % 4 == 0) {
      EXPECT_TRUE(engine->Checkpoint().ok());
      // The snapshot pinned before the checkpoint still reads its state.
      EXPECT_EQ(pinned->GetTableInfo("t").value().row_count,
                (b + 1) * kBatchRows);
    }
  }
  stats.final_epoch = pager->wal_epoch();
  pinned.reset();
  EXPECT_TRUE(engine->Close().ok());

  // Recovery: the wrapped (or grown) log replays to the full row set.
  auto reopened = StorageEngine::Open(path).value();
  auto txn = reopened->BeginRead().value();
  EXPECT_EQ(txn->GetTableInfo("t").value().row_count, kBatches * kBatchRows);
  return stats;
}

// Acceptance property of WAL wrap-around: under a rolling pinned snapshot
// the truncating reset never fires, yet the WAL footprint stays bounded
// at O(live frames) because each full fold wraps back to slot 1. The
// wrap-off control run shows what the bound saves: its log grows with
// every batch and never shrinks.
TEST_F(PagerConcurrencyTest, WalWrapBoundsGrowthUnderRollingPinnedReader) {
  const WrapRunStats on = RunRollingPinWorkload(path_, true);
  const WrapRunStats off =
      RunRollingPinWorkload((dir_ / "db_nowrap").string(), false);

  // Wrap-on reclaimed the log repeatedly (10 checkpoints → 10 wraps).
  EXPECT_GE(on.final_epoch, 2u);
  EXPECT_EQ(off.final_epoch, 0u);

  // Bounded footprint: the wrap-on peak stays within the live-frame
  // working set (one checkpoint interval), while the wrap-off log ends up
  // holding the whole run. Require a 2x separation at minimum — the
  // actual gap is ~10x (40 batches vs one 4-batch interval).
  EXPECT_GE(off.max_frames, 2 * on.max_frames)
      << "wrap-around did not bound WAL growth (on=" << on.max_frames
      << " frames, off=" << off.max_frames << " frames)";
  EXPECT_GE(off.max_wal_bytes, 2 * on.max_wal_bytes)
      << "wrap-around did not bound WAL file size (on=" << on.max_wal_bytes
      << " bytes, off=" << off.max_wal_bytes << " bytes)";
}

}  // namespace
}  // namespace micronn

// Query module tests: attribute values, predicates, histograms and
// selectivity estimation, the hybrid-plan optimizer, attribute indexes.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "query/attr_index.h"
#include "query/optimizer.h"
#include "query/predicate.h"
#include "query/stats.h"
#include "query/value.h"
#include "storage/engine.h"

namespace micronn {
namespace {

TEST(ValueTest, CompareWithinType) {
  EXPECT_LT(*AttributeValue::Int(1).Compare(AttributeValue::Int(2)), 0);
  EXPECT_EQ(*AttributeValue::Double(1.5).Compare(AttributeValue::Double(1.5)),
            0);
  EXPECT_GT(*AttributeValue::String("b").Compare(AttributeValue::String("a")),
            0);
  EXPECT_FALSE(AttributeValue::Int(1).Compare(AttributeValue::Double(1)).ok());
}

TEST(ValueTest, RecordRoundTrip) {
  AttributeRecord record;
  record["city"] = AttributeValue::String("Seattle");
  record["year"] = AttributeValue::Int(2024);
  record["score"] = AttributeValue::Double(0.75);
  const std::string blob = EncodeAttributeRecord(record);
  auto decoded = DecodeAttributeRecord(blob).value();
  EXPECT_EQ(decoded, record);
  EXPECT_TRUE(DecodeAttributeRecord("").ok() == false ||
              DecodeAttributeRecord("").value().empty());
}

TEST(ValueTest, IndexEncodingOrders) {
  auto enc = [](const AttributeValue& v) { return EncodeValueForIndex(v); };
  EXPECT_LT(enc(AttributeValue::Int(-5)), enc(AttributeValue::Int(3)));
  EXPECT_LT(enc(AttributeValue::Double(-0.5)),
            enc(AttributeValue::Double(2.5)));
  EXPECT_LT(enc(AttributeValue::String("apple")),
            enc(AttributeValue::String("banana")));
  // Types segregate by tag byte.
  EXPECT_NE(enc(AttributeValue::Int(1))[0],
            enc(AttributeValue::String("1"))[0]);
}

TEST(PredicateTest, CompareOps) {
  AttributeRecord rec;
  rec["x"] = AttributeValue::Int(5);
  auto eval = [&](CompareOp op, int64_t v) {
    return EvalPredicate(
               Predicate::Compare("x", op, AttributeValue::Int(v)), rec)
        .value();
  };
  EXPECT_TRUE(eval(CompareOp::kEq, 5));
  EXPECT_FALSE(eval(CompareOp::kEq, 6));
  EXPECT_TRUE(eval(CompareOp::kNe, 6));
  EXPECT_TRUE(eval(CompareOp::kLt, 6));
  EXPECT_FALSE(eval(CompareOp::kLt, 5));
  EXPECT_TRUE(eval(CompareOp::kLe, 5));
  EXPECT_TRUE(eval(CompareOp::kGt, 4));
  EXPECT_TRUE(eval(CompareOp::kGe, 5));
  EXPECT_FALSE(eval(CompareOp::kGe, 6));
}

TEST(PredicateTest, MissingColumnIsFalse) {
  AttributeRecord rec;
  EXPECT_FALSE(EvalPredicate(Predicate::Compare("absent", CompareOp::kEq,
                                                AttributeValue::Int(1)),
                             rec)
                   .value());
  EXPECT_FALSE(EvalPredicate(Predicate::Match("absent", "tag"), rec).value());
}

TEST(PredicateTest, MatchSemantics) {
  AttributeRecord rec;
  rec["tags"] = AttributeValue::String("black cat yarn");
  EXPECT_TRUE(
      EvalPredicate(Predicate::Match("tags", "cat yarn"), rec).value());
  EXPECT_FALSE(
      EvalPredicate(Predicate::Match("tags", "cat dog"), rec).value());
  // MATCH on a non-string column is an error.
  rec["num"] = AttributeValue::Int(1);
  EXPECT_FALSE(EvalPredicate(Predicate::Match("num", "1"), rec).ok());
}

TEST(PredicateTest, BooleanComposition) {
  AttributeRecord rec;
  rec["a"] = AttributeValue::Int(1);
  rec["b"] = AttributeValue::Int(2);
  auto a1 = Predicate::Compare("a", CompareOp::kEq, AttributeValue::Int(1));
  auto b3 = Predicate::Compare("b", CompareOp::kEq, AttributeValue::Int(3));
  EXPECT_FALSE(EvalPredicate(Predicate::And({a1, b3}), rec).value());
  EXPECT_TRUE(EvalPredicate(Predicate::Or({a1, b3}), rec).value());
  // Nested trees.
  auto nested = Predicate::And({a1, Predicate::Or({b3, a1})});
  EXPECT_TRUE(EvalPredicate(nested, rec).value());
}

TEST(PredicateTest, ToStringReadable) {
  auto p = Predicate::And(
      {Predicate::Compare("year", CompareOp::kGe, AttributeValue::Int(2020)),
       Predicate::Match("tags", "cat")});
  EXPECT_EQ(p.ToString(), "(year >= 2020 AND tags MATCH \"cat\")");
}

// --- Histograms & selectivity ---

TEST(StatsTest, NumericHistogramEstimates) {
  // Uniform ints 0..999, one row each.
  std::vector<AttributeValue> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(AttributeValue::Int(i));
  ColumnStats stats = BuildColumnStats(ValueType::kInt, 1000, sample);
  EXPECT_EQ(stats.distinct_count, 1000u);
  EXPECT_NEAR(stats.EstimateCompare(CompareOp::kLt, AttributeValue::Int(500)),
              0.5, 0.05);
  EXPECT_NEAR(stats.EstimateCompare(CompareOp::kGe, AttributeValue::Int(900)),
              0.1, 0.05);
  EXPECT_NEAR(stats.EstimateCompare(CompareOp::kEq, AttributeValue::Int(5)),
              0.001, 0.001);
  EXPECT_NEAR(stats.EstimateCompare(CompareOp::kNe, AttributeValue::Int(5)),
              0.999, 0.001);
}

TEST(StatsTest, LowCardinalityDistinct) {
  std::vector<AttributeValue> sample;
  for (int i = 0; i < 900; ++i) {
    sample.push_back(AttributeValue::String(i % 3 == 0 ? "red"
                                            : i % 3 == 1 ? "green"
                                                         : "blue"));
  }
  ColumnStats stats = BuildColumnStats(ValueType::kString, 90000, sample);
  EXPECT_EQ(stats.distinct_count, 3u);
  EXPECT_NEAR(
      stats.EstimateCompare(CompareOp::kEq, AttributeValue::String("red")),
      1.0 / 3, 0.05);
}

TEST(StatsTest, SerializationRoundTrip) {
  std::vector<AttributeValue> sample;
  for (int i = 0; i < 100; ++i) sample.push_back(AttributeValue::Double(i * 0.5));
  ColumnStats stats = BuildColumnStats(ValueType::kDouble, 100, sample);
  auto decoded = ColumnStats::Deserialize(stats.Serialize()).value();
  EXPECT_EQ(decoded.type, stats.type);
  EXPECT_EQ(decoded.row_count, stats.row_count);
  EXPECT_EQ(decoded.distinct_count, stats.distinct_count);
  EXPECT_EQ(decoded.numeric_bounds, stats.numeric_bounds);
}

TEST(StatsTest, EstimatorComposition) {
  std::map<std::string, ColumnStats> per_column;
  {
    std::vector<AttributeValue> sample;
    for (int i = 0; i < 1000; ++i) sample.push_back(AttributeValue::Int(i));
    per_column["u"] = BuildColumnStats(ValueType::kInt, 1000, sample);
  }
  SelectivityEstimator est(per_column, 1000, nullptr);
  auto lt100 =
      Predicate::Compare("u", CompareOp::kLt, AttributeValue::Int(100));
  auto lt500 =
      Predicate::Compare("u", CompareOp::kLt, AttributeValue::Int(500));
  // AND takes the min.
  EXPECT_NEAR(*est.Estimate(Predicate::And({lt100, lt500})), 0.1, 0.05);
  // OR sums (capped at 1).
  EXPECT_NEAR(*est.Estimate(Predicate::Or({lt100, lt500})), 0.6, 0.07);
  std::vector<Predicate> many(5, lt500);
  EXPECT_DOUBLE_EQ(*est.Estimate(Predicate::Or(std::move(many))), 1.0);
}

TEST(StatsTest, MatchUsesTokenDf) {
  SelectivityEstimator est(
      {}, 10000,
      [](const std::string& column, const std::string& token)
          -> Result<uint64_t> {
        EXPECT_EQ(column, "tags");
        if (token == "rare") return 10;
        if (token == "common") return 5000;
        return 0;
      });
  // Conjunction of tokens: min of df/N (paper §3.5.1).
  EXPECT_DOUBLE_EQ(*est.Estimate(Predicate::Match("tags", "common rare")),
                   0.001);
  EXPECT_DOUBLE_EQ(*est.Estimate(Predicate::Match("tags", "common")), 0.5);
}

// --- Optimizer ---

TEST(OptimizerTest, IvfSelectivityFormula) {
  // Eq. 2: F_IVF = n * p / |R|.
  EXPECT_DOUBLE_EQ(EstimateIvfSelectivity(8, 100, 100000), 8 * 100 / 100000.0);
  EXPECT_DOUBLE_EQ(EstimateIvfSelectivity(1000, 1000, 100), 1.0);  // clamped
}

TEST(OptimizerTest, PlanFollowsSelectivityRule) {
  std::map<std::string, ColumnStats> per_column;
  {
    std::vector<AttributeValue> sample;
    for (int i = 0; i < 1000; ++i) sample.push_back(AttributeValue::Int(i));
    per_column["x"] = BuildColumnStats(ValueType::kInt, 100000, sample);
  }
  SelectivityEstimator est(per_column, 100000, nullptr);
  // F_IVF = 8 * 100 / 100000 = 0.008.
  // Highly selective: x == const has F ~ 1/100000 < 0.008 -> pre-filter.
  auto selective =
      Predicate::Compare("x", CompareOp::kEq, AttributeValue::Int(7));
  auto decision = ChoosePlan(est, selective, 8, 100).value();
  EXPECT_EQ(decision.plan, QueryPlan::kPreFilter);
  EXPECT_LT(decision.filter_selectivity, decision.ivf_selectivity);
  // Unselective: x < 900 has F ~ 0.9 > 0.008 -> post-filter.
  auto broad =
      Predicate::Compare("x", CompareOp::kLt, AttributeValue::Int(900));
  decision = ChoosePlan(est, broad, 8, 100).value();
  EXPECT_EQ(decision.plan, QueryPlan::kPostFilter);
}

// --- Attribute indexes ---

class AttrIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_attr_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    engine_ = StorageEngine::Open(dir_ / "db").value();
    txn_ = engine_->BeginWrite().value();
    resolver_ = [this](const std::string& name) {
      return txn_->OpenOrCreateTable(name);
    };
  }
  void TearDown() override {
    if (txn_) engine_->Rollback(std::move(txn_));
    engine_.reset();
    std::filesystem::remove_all(dir_);
  }

  AttributeRecord Rec(int64_t year, const std::string& city,
                      const std::string& tags = "") {
    AttributeRecord r;
    r["year"] = AttributeValue::Int(year);
    r["city"] = AttributeValue::String(city);
    if (!tags.empty()) r["tags"] = AttributeValue::String(tags);
    return r;
  }

  std::filesystem::path dir_;
  std::unique_ptr<StorageEngine> engine_;
  std::unique_ptr<WriteTransaction> txn_;
  TableResolver resolver_;
  const std::vector<std::string> fts_ = {"tags"};
};

TEST_F(AttrIndexTest, RangeScans) {
  for (uint64_t vid = 1; vid <= 100; ++vid) {
    ASSERT_TRUE(IndexAttributes(resolver_, vid,
                                Rec(2000 + vid % 10,
                                    vid % 2 ? "seattle" : "nyc"),
                                fts_)
                    .ok());
  }
  auto eq = Predicate::Compare("year", CompareOp::kEq,
                               AttributeValue::Int(2005));
  EXPECT_EQ(CollectMatchingVids(resolver_, eq).value().size(), 10u);
  auto lt = Predicate::Compare("year", CompareOp::kLt,
                               AttributeValue::Int(2005));
  EXPECT_EQ(CollectMatchingVids(resolver_, lt).value().size(), 50u);
  auto ge = Predicate::Compare("year", CompareOp::kGe,
                               AttributeValue::Int(2008));
  EXPECT_EQ(CollectMatchingVids(resolver_, ge).value().size(), 20u);
  auto ne = Predicate::Compare("year", CompareOp::kNe,
                               AttributeValue::Int(2000));
  EXPECT_EQ(CollectMatchingVids(resolver_, ne).value().size(), 90u);
  auto city = Predicate::Compare("city", CompareOp::kEq,
                                 AttributeValue::String("seattle"));
  EXPECT_EQ(CollectMatchingVids(resolver_, city).value().size(), 50u);
}

TEST_F(AttrIndexTest, AndOrComposition) {
  for (uint64_t vid = 1; vid <= 100; ++vid) {
    ASSERT_TRUE(IndexAttributes(resolver_, vid,
                                Rec(2000 + vid % 10,
                                    vid % 2 ? "seattle" : "nyc"),
                                fts_)
                    .ok());
  }
  auto odd_city = Predicate::Compare("city", CompareOp::kEq,
                                     AttributeValue::String("seattle"));
  auto y2005 = Predicate::Compare("year", CompareOp::kEq,
                                  AttributeValue::Int(2005));
  // year 2005 <=> vid % 10 == 5 (odd) -> all 10 are in seattle.
  auto both = CollectMatchingVids(resolver_, Predicate::And({odd_city, y2005}))
                  .value();
  EXPECT_EQ(both.size(), 10u);
  auto either =
      CollectMatchingVids(resolver_, Predicate::Or({odd_city, y2005})).value();
  EXPECT_EQ(either.size(), 50u);  // 2005s are a subset of seattle
}

TEST_F(AttrIndexTest, MatchThroughFts) {
  ASSERT_TRUE(IndexAttributes(resolver_, 1, Rec(2020, "x", "cat yarn"),
                              fts_).ok());
  ASSERT_TRUE(IndexAttributes(resolver_, 2, Rec(2021, "x", "cat dog"),
                              fts_).ok());
  auto match = Predicate::Match("tags", "cat yarn");
  EXPECT_EQ(CollectMatchingVids(resolver_, match).value(),
            (std::vector<uint64_t>{1}));
}

TEST_F(AttrIndexTest, UnindexRemovesEntries) {
  const AttributeRecord rec = Rec(1999, "rome", "trip photos");
  ASSERT_TRUE(IndexAttributes(resolver_, 5, rec, fts_).ok());
  ASSERT_TRUE(UnindexAttributes(resolver_, 5, rec, fts_).ok());
  auto eq = Predicate::Compare("year", CompareOp::kEq,
                               AttributeValue::Int(1999));
  EXPECT_TRUE(CollectMatchingVids(resolver_, eq).value().empty());
  EXPECT_TRUE(CollectMatchingVids(resolver_,
                                  Predicate::Match("tags", "trip"))
                  .value()
                  .empty());
}

TEST_F(AttrIndexTest, UnknownColumnMatchesNothing) {
  auto pred = Predicate::Compare("ghost", CompareOp::kEq,
                                 AttributeValue::Int(1));
  EXPECT_TRUE(CollectMatchingVids(resolver_, pred).value().empty());
}

}  // namespace
}  // namespace micronn

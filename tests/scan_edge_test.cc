// Edge-case coverage for partition scans, exact search, vector codecs and
// the recall helper — the pieces between storage and search.
#include <gtest/gtest.h>

#include <filesystem>

#include "ivf/scan.h"
#include "ivf/search.h"
#include "storage/engine.h"
#include "storage/key_encoding.h"

namespace micronn {
namespace {

class ScanEdgeTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDim = 4;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_scanedge_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    engine_ = StorageEngine::Open(dir_ / "db").value();
  }
  void TearDown() override {
    engine_.reset();
    std::filesystem::remove_all(dir_);
  }

  void PutRow(BTree* vectors, uint32_t partition, uint64_t vid, float x) {
    const float v[kDim] = {x, 0, 0, 0};
    ASSERT_TRUE(vectors
                    ->Put(VectorKey(partition, vid),
                          EncodeVectorRow("a" + std::to_string(vid), v, kDim))
                    .ok());
  }

  std::filesystem::path dir_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(ScanEdgeTest, EmptyPartitionScansZeroRows) {
  auto txn = engine_->BeginWrite().value();
  BTree vectors = txn->OpenOrCreateTable(kVectorsTable).value();
  PutRow(&vectors, 5, 1, 1.f);
  size_t rows = 0;
  ASSERT_TRUE(ScanPartition(vectors, 3, kDim, nullptr,
                            [&](const ScanBlock& b) {
                              rows += b.count;
                              return Status::OK();
                            },
                            nullptr)
                  .ok());
  EXPECT_EQ(rows, 0u);
  engine_->Rollback(std::move(txn));
}

TEST_F(ScanEdgeTest, ScanStopsAtPartitionBoundary) {
  auto txn = engine_->BeginWrite().value();
  BTree vectors = txn->OpenOrCreateTable(kVectorsTable).value();
  // Partitions 1, 2, 3 with 5 rows each; scanning 2 must see exactly 5.
  uint64_t vid = 1;
  for (uint32_t p = 1; p <= 3; ++p) {
    for (int i = 0; i < 5; ++i) PutRow(&vectors, p, vid++, 1.f);
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(ScanPartition(vectors, 2, kDim, nullptr,
                            [&](const ScanBlock& b) {
                              for (size_t i = 0; i < b.count; ++i) {
                                seen.push_back(b.vids[i]);
                              }
                              return Status::OK();
                            },
                            nullptr)
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{6, 7, 8, 9, 10}));
  engine_->Rollback(std::move(txn));
}

TEST_F(ScanEdgeTest, BlockBoundaryExactMultiple) {
  // Exactly kScanBlockRows rows: one full block, no empty trailing block.
  auto txn = engine_->BeginWrite().value();
  BTree vectors = txn->OpenOrCreateTable(kVectorsTable).value();
  for (uint64_t vid = 1; vid <= kScanBlockRows; ++vid) {
    PutRow(&vectors, 1, vid, static_cast<float>(vid));
  }
  size_t blocks = 0, rows = 0;
  ASSERT_TRUE(ScanPartition(vectors, 1, kDim, nullptr,
                            [&](const ScanBlock& b) {
                              ++blocks;
                              rows += b.count;
                              return Status::OK();
                            },
                            nullptr)
                  .ok());
  EXPECT_EQ(blocks, 1u);
  EXPECT_EQ(rows, kScanBlockRows);
  engine_->Rollback(std::move(txn));
}

TEST_F(ScanEdgeTest, CallbackErrorAbortsScan) {
  auto txn = engine_->BeginWrite().value();
  BTree vectors = txn->OpenOrCreateTable(kVectorsTable).value();
  for (uint64_t vid = 1; vid <= 600; ++vid) {
    PutRow(&vectors, 1, vid, 1.f);
  }
  size_t calls = 0;
  Status st = ScanPartition(vectors, 1, kDim, nullptr,
                            [&](const ScanBlock&) {
                              ++calls;
                              return Status::Aborted("stop");
                            },
                            nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 1u);
  engine_->Rollback(std::move(txn));
}

TEST_F(ScanEdgeTest, FilterErrorPropagates) {
  auto txn = engine_->BeginWrite().value();
  BTree vectors = txn->OpenOrCreateTable(kVectorsTable).value();
  PutRow(&vectors, 1, 1, 1.f);
  RowFilter broken = [](uint64_t) -> Result<bool> {
    return Status::IOError("attr table gone");
  };
  Status st = ScanPartition(vectors, 1, kDim, broken,
                            [](const ScanBlock&) { return Status::OK(); },
                            nullptr);
  EXPECT_TRUE(st.IsIOError());
  engine_->Rollback(std::move(txn));
}

TEST_F(ScanEdgeTest, CorruptRowSurfacesAsCorruption) {
  auto txn = engine_->BeginWrite().value();
  BTree vectors = txn->OpenOrCreateTable(kVectorsTable).value();
  ASSERT_TRUE(vectors.Put(VectorKey(1, 1), "garbage").ok());
  Status st = ScanPartition(vectors, 1, kDim, nullptr,
                            [](const ScanBlock&) { return Status::OK(); },
                            nullptr);
  EXPECT_TRUE(st.IsCorruption());
  engine_->Rollback(std::move(txn));
}

TEST_F(ScanEdgeTest, ExactSearchKLargerThanCollection) {
  auto txn = engine_->BeginWrite().value();
  BTree vectors = txn->OpenOrCreateTable(kVectorsTable).value();
  for (uint64_t vid = 1; vid <= 3; ++vid) {
    PutRow(&vectors, 1, vid, static_cast<float>(vid));
  }
  const float q[kDim] = {0, 0, 0, 0};
  auto result =
      ExactSearch(vectors, Metric::kL2, kDim, q, 10, nullptr, nullptr)
          .value();
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 1u);  // closest to 0
  engine_->Rollback(std::move(txn));
}

TEST(RecallTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(RecallAtK({}, {}), 1.0);  // empty truth: vacuous
  EXPECT_DOUBLE_EQ(RecallAtK({}, {{1, 0.f}}), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({{1, 0.f}}, {{1, 0.f}}), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK({{2, 0.f}}, {{1, 0.f}, {3, 1.f}}), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({{1, 0.f}, {9, 2.f}}, {{1, 0.f}, {3, 1.f}}),
                   0.5);
}

}  // namespace
}  // namespace micronn

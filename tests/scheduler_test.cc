// Cross-request MQO admission scheduler: concurrent/sequential parity
// under randomized mixed workloads, pass-through when disabled, fast-path
// behavior for lone clients, coalescing observability, and per-submission
// error isolation inside a coalesced group.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <random>
#include <thread>
#include <vector>

#include "core/db.h"
#include "datagen/dataset.h"
#include "query/predicate.h"

namespace micronn {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDim = 16;
  static constexpr size_t kRows = 1200;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_sched_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "test.mnn";

    DatasetSpec spec;
    spec.name = "sched";
    spec.dim = kDim;
    spec.n = kRows;
    spec.n_queries = 64;
    spec.seed = 1234;
    ds_ = GenerateDataset(spec);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DbOptions Options(uint32_t mqo_window_us) {
    DbOptions options;
    options.dim = kDim;
    options.target_cluster_size = 50;
    options.minibatch_size = 256;
    options.train_iterations = 10;
    options.default_nprobe = 4;
    options.rebuild_chunk_rows = 512;
    options.search_threads = 2;
    options.mqo_window_us = mqo_window_us;
    return options;
  }

  // Creates + populates the database file once (bucket attribute i % 5),
  // builds the index and the optimizer statistics, then closes it so each
  // test can reopen with the scheduler configuration it wants.
  void BuildDatabase() {
    auto db = DB::Open(path_, Options(0)).value();
    std::vector<UpsertRequest> batch;
    for (size_t i = 0; i < kRows; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.assign(ds_.row(i), ds_.row(i) + kDim);
      req.attributes["bucket"] =
          AttributeValue::Int(static_cast<int64_t>(i % 5));
      batch.push_back(std::move(req));
      if (batch.size() == 500) {
        ASSERT_TRUE(db->Upsert(batch).ok());
        batch.clear();
      }
    }
    if (!batch.empty()) ASSERT_TRUE(db->Upsert(batch).ok());
    ASSERT_TRUE(db->BuildIndex().ok());
    ASSERT_TRUE(db->AnalyzeStats().ok());
    ASSERT_TRUE(db->Close().ok());
  }

  // Randomized mixed request: filtered / exact / heterogeneous (k,
  // nprobe) / quantized-override, deterministic for a seed.
  SearchRequest RandomRequest(std::mt19937* rng) {
    SearchRequest req;
    const size_t qi = (*rng)() % ds_.spec.n_queries;
    req.query.assign(ds_.query(qi), ds_.query(qi) + kDim);
    req.k = 1 + (*rng)() % 15;
    req.nprobe = 1 + (*rng)() % 6;
    switch ((*rng)() % 8) {
      case 0:
        req.exact = true;
        break;
      case 1:
      case 2:
        req.filter = Predicate::Compare(
            "bucket", CompareOp::kEq,
            AttributeValue::Int(static_cast<int64_t>((*rng)() % 5)));
        break;
      default:
        break;
    }
    if ((*rng)() % 4 == 0) req.quantized = false;
    return req;
  }

  static void ExpectSameResponse(const SearchResponse& got,
                                 const SearchResponse& want, size_t q) {
    ASSERT_EQ(got.items.size(), want.items.size()) << "q=" << q;
    for (size_t i = 0; i < want.items.size(); ++i) {
      EXPECT_EQ(got.items[i].vid, want.items[i].vid) << "q=" << q << " " << i;
      EXPECT_EQ(got.items[i].asset_id, want.items[i].asset_id)
          << "q=" << q << " " << i;
      // Bit-identical distances: shared scans and dedicated scans run the
      // same kernels over the same snapshot.
      EXPECT_EQ(got.items[i].distance, want.items[i].distance)
          << "q=" << q << " " << i;
    }
    EXPECT_EQ(got.plan, want.plan) << "q=" << q;
    EXPECT_EQ(got.decision.plan, want.decision.plan) << "q=" << q;
    // True per-query counters are independent of how the group was
    // assembled around the query.
    EXPECT_EQ(got.partitions_scanned, want.partitions_scanned) << "q=" << q;
    EXPECT_EQ(got.rows_scanned, want.rows_scanned) << "q=" << q;
    EXPECT_EQ(got.rows_filtered, want.rows_filtered) << "q=" << q;
    EXPECT_EQ(got.explain.probe_pairs, want.explain.probe_pairs) << "q=" << q;
    EXPECT_EQ(got.explain.quantized, want.explain.quantized) << "q=" << q;
    EXPECT_EQ(got.explain.rerank_candidates, want.explain.rerank_candidates)
        << "q=" << q;
  }

  std::filesystem::path dir_;
  std::filesystem::path path_;
  Dataset ds_;
};

// The acceptance stress test: N threads issue randomized mixed searches
// concurrently through the scheduler; every response must be bit-identical
// to the same request run sequentially with the scheduler disabled.
TEST_F(SchedulerTest, ConcurrentMatchesSequentialStress) {
  BuildDatabase();

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 40;
  std::vector<std::vector<SearchRequest>> requests(kThreads);
  std::mt19937 rng(99);
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      requests[t].push_back(RandomRequest(&rng));
    }
  }

  // Baseline: scheduler disabled, strictly sequential.
  std::vector<std::vector<SearchResponse>> baseline(kThreads);
  {
    auto db = DB::Open(path_, Options(0)).value();
    for (size_t t = 0; t < kThreads; ++t) {
      for (const SearchRequest& req : requests[t]) {
        baseline[t].push_back(db->Search(req).value());
      }
    }
    ASSERT_TRUE(db->Close().ok());
  }

  // Concurrent run with coalescing on.
  auto db = DB::Open(path_, Options(300)).value();
  std::vector<std::vector<SearchResponse>> got(kThreads);
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load()) std::this_thread::yield();
      for (const SearchRequest& req : requests[t]) {
        got[t].push_back(db->Search(req).value());
      }
    });
  }
  start.store(true);
  for (auto& th : threads) th.join();

  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), baseline[t].size());
    for (size_t q = 0; q < got[t].size(); ++q) {
      ExpectSameResponse(got[t][q], baseline[t][q], t * 1000 + q);
    }
  }
  // Under 8 threads of sustained traffic, at least some groups must have
  // actually coalesced — otherwise the scheduler is not doing its job.
  EXPECT_GT(db->scheduler_stats().coalesced_groups.load(), 0u);
  ASSERT_TRUE(db->Close().ok());
}

// mqo_window_us = 0 must bypass the staging queue entirely.
TEST_F(SchedulerTest, WindowZeroBypassesQueue) {
  BuildDatabase();
  auto db = DB::Open(path_, Options(0)).value();

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 25;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(7 + t);
      while (!start.load()) std::this_thread::yield();
      for (size_t i = 0; i < kPerThread; ++i) {
        auto resp = db->Search(RandomRequest(&rng)).value();
        EXPECT_EQ(resp.explain.coalesced_group_size, 1u);
        EXPECT_EQ(resp.explain.coalesce_wait_us, 0u);
      }
    });
  }
  start.store(true);
  for (auto& th : threads) th.join();

  const SchedulerStats& stats = db->scheduler_stats();
  EXPECT_EQ(stats.passthrough.load(), kThreads * kPerThread);
  EXPECT_EQ(stats.submissions.load(), 0u);
  EXPECT_EQ(stats.groups.load(), 0u);
  EXPECT_EQ(stats.coalesced_groups.load(), 0u);
  ASSERT_TRUE(db->Close().ok());
}

// A lone client with the scheduler enabled takes the fast path: every
// submission leads immediately, nothing coalesces, no window is paid.
TEST_F(SchedulerTest, SingleClientFastPath) {
  BuildDatabase();
  auto db = DB::Open(path_, Options(200)).value();
  std::mt19937 rng(13);
  for (size_t i = 0; i < 30; ++i) {
    auto resp = db->Search(RandomRequest(&rng)).value();
    EXPECT_EQ(resp.explain.coalesced_group_size, 1u);
  }
  const SchedulerStats& stats = db->scheduler_stats();
  EXPECT_EQ(stats.submissions.load(), 30u);
  EXPECT_EQ(stats.groups.load(), 30u);
  EXPECT_EQ(stats.coalesced_groups.load(), 0u);
  EXPECT_EQ(stats.passthrough.load(), 0u);
  ASSERT_TRUE(db->Close().ok());
}

// A BatchSearch submission is never split by the group-size cap, and a
// single-threaded batch reports the executed group it formed by itself.
TEST_F(SchedulerTest, BatchSubmissionIsNotSplit) {
  BuildDatabase();
  DbOptions options = Options(200);
  options.mqo_max_group = 16;  // far below the batch size
  auto db = DB::Open(path_, options).value();
  std::vector<SearchRequest> batch(100);
  for (size_t q = 0; q < batch.size(); ++q) {
    const size_t qi = q % ds_.spec.n_queries;
    batch[q].query.assign(ds_.query(qi), ds_.query(qi) + kDim);
    batch[q].k = 5;
  }
  auto responses = db->BatchSearch(batch).value();
  ASSERT_EQ(responses.size(), batch.size());
  for (const SearchResponse& resp : responses) {
    EXPECT_EQ(resp.explain.group_size, 100u);
    EXPECT_EQ(resp.explain.coalesced_group_size, 1u);
  }
  ASSERT_TRUE(db->Close().ok());
}

// An invalid request inside a coalesced group fails only its own
// submission; concurrent peers are unaffected.
TEST_F(SchedulerTest, InvalidRequestFailsOnlyItsSubmission) {
  BuildDatabase();
  auto db = DB::Open(path_, Options(500)).value();

  std::atomic<bool> start{false};
  std::atomic<uint64_t> ok_count{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(100 + t);
      while (!start.load()) std::this_thread::yield();
      for (size_t i = 0; i < 30; ++i) {
        if (t == 0) {
          SearchRequest bad;
          bad.query.assign(kDim + 3, 0.5f);  // wrong dimension
          bad.k = 5;
          auto r = db->Search(bad);
          EXPECT_FALSE(r.ok());
          EXPECT_TRUE(r.status().IsInvalidArgument());
        } else {
          auto r = db->Search(RandomRequest(&rng));
          EXPECT_TRUE(r.ok());
          if (r.ok()) ok_count.fetch_add(1);
        }
      }
    });
  }
  start.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok_count.load(), 3u * 30u);
  ASSERT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace micronn

// Scrub-under-traffic stress: inject repairable page corruption into a
// built database, then let the background HealthMonitor heal it to
// kHealthy — no explicit DB::Scrub() call — while writer and reader
// threads hammer the database. The acceptance bar:
//   - every acked commit is durable and searchable afterwards,
//   - every successful query verifies exactly against ground truth
//     (failures may only be explicit Corruption/IOError),
//   - the budgeted scrub never holds the writer slot longer than one
//     scrub_batch_pages batch (ScrubState::max_step_pages), and commits
//     land between batches while the pass is active.
// Run under ASan and TSan in CI; the test contains no raw shared state —
// ground truth is mutex-guarded, counters are atomics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "core/maintainer.h"
#include "ivf/schema.h"
#include "numerics/distance.h"
#include "query/stats.h"
#include "storage/engine.h"
#include "storage/key_encoding.h"
#include "support/fault_injection_file.h"

namespace micronn {
namespace {

class ScrubStressTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDim = 8;
  static constexpr int kRows = 400;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_scrubstress_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "db").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DbOptions Options() const {
    DbOptions options;
    options.dim = kDim;
    options.target_cluster_size = 32;
    return options;
  }

  static void FlipByte(const std::string& file, uint64_t offset) {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << file;
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    ASSERT_TRUE(f.good()) << file << " @" << offset;
    b = static_cast<char>(b ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
    ASSERT_TRUE(f.good());
  }

  static bool AcceptableFailure(const Status& st) {
    return st.IsCorruption() || st.IsIOError() || st.IsBusy();
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(ScrubStressTest, BackgroundHealerRepairsUnderConcurrentTraffic) {
  // Mutex-guarded ground truth. Writers insert BEFORE calling Upsert, so
  // anything a reader can ever observe is already present; entries for
  // commits that later fail are harmless (membership superset).
  std::mutex truth_mutex;
  std::map<std::string, std::vector<float>> truth;

  // File wrapper so the test can inject a *transient* read fault later
  // (the quarantine seed). Handles stay valid while the DB is open.
  auto rig = std::make_shared<std::map<std::string, FaultInjectionFile*>>();
  DbOptions options = Options();
  options.pager.file_wrapper = [rig](std::unique_ptr<FileHandle> base,
                                     std::string_view role) {
    auto f =
        std::make_unique<FaultInjectionFile>(std::move(base), FaultSchedule{});
    (*rig)[std::string(role)] = f.get();
    return std::unique_ptr<FileHandle>(std::move(f));
  };
  auto db = DB::Open(path_, options).value();
  {
    std::mt19937 rng(11);
    std::uniform_real_distribution<float> dist(-1.f, 1.f);
    std::vector<UpsertRequest> batch;
    for (int i = 0; i < kRows; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.resize(kDim);
      for (float& v : req.vector) v = dist(rng);
      truth[req.asset_id] = req.vector;
      batch.push_back(std::move(req));
      if (batch.size() == 64) {
        ASSERT_TRUE(db->Upsert(batch).ok());
        batch.clear();
      }
    }
    if (!batch.empty()) ASSERT_TRUE(db->Upsert(batch).ok());
  }
  Pager* pager = db->engine()->pager();

  // Repair window: a guard snapshot across BuildIndex keeps its final
  // checkpoint from resetting the WAL; re-pin at the built state, land a
  // raw engine commit (a DB::Upsert would rewrite the SQ8 tree and shadow
  // the pages we are about to corrupt), and fold. The index's frames stay
  // folded-but-indexed for the whole test, so every corrupted folded page
  // is repairable.
  const uint64_t guard = pager->BeginSnapshot();
  ASSERT_TRUE(db->BuildIndex().ok());
  const uint64_t snap = pager->BeginSnapshot();
  pager->EndSnapshot(guard);
  {
    auto txn = db->engine()->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("scratch").value();
    ASSERT_TRUE(t.Put(key::U64(1), "x").ok());
    ASSERT_TRUE(db->engine()->Commit(std::move(txn)).ok());
  }
  ASSERT_TRUE(db->engine()->Checkpoint().ok());
  ASSERT_GT(pager->wal_frame_count(), 0u);
  ASSERT_GT(pager->wal_backfill_watermark(), 0u);

  // Corrupt roots of tables the index rebuild wrote (frames still in the
  // WAL) but writer traffic never touches — Upsert rewrites the vectors /
  // SQ8 / meta trees, which would shadow the damage with newer frames and
  // turn the repair into a skip. Centroids, SQ8 params, and attribute
  // stats are only written by index builds, so they stay repairable.
  int corrupted = 0;
  {
    auto txn = db->engine()->BeginRead().value();
    for (const char* table :
         {kCentroidsTable, kSq8ParamsTable, kStatsTable}) {
      Result<TableInfo> info = txn->GetTableInfo(table);
      if (!info.ok() || info->root == kInvalidPage) continue;
      FlipByte(path_, static_cast<uint64_t>(info->root) * kPageSize + 777);
      ++corrupted;
    }
  }
  ASSERT_GE(corrupted, 2);
  db->DropCaches();

  // Seed a real SQ8 quarantine with a *transient* disk fault: reads are
  // WAL-first, so corrupt the next WAL read and search until the flip
  // lands on an SQ8 frame — the executor quarantines that partition and
  // falls back to float scans. The bytes on disk stay good (only the
  // read was corrupted), so the healer's re-verification pass can clear
  // the quarantine honestly. This is also what arms the monitor: the
  // on-disk damage above is latent (queries serve the pristine frames),
  // but the transient fault bumps the corruption counter and degrades
  // the verdict, and the scheduled pass then finds and repairs the
  // latent damage too.
  {
    std::mt19937 rng(99);
    std::uniform_real_distribution<float> dist(-1.f, 1.f);
    FaultInjectionFile* wal = (*rig)["wal"];
    ASSERT_NE(wal, nullptr);
    for (int attempt = 0; attempt < 500; ++attempt) {
      FaultSchedule s;
      // Stagger which read of the search sequence gets flipped so the
      // fault walks through centroid/vector/SQ8 reads across attempts.
      s.corrupt_read_at = wal->counters().reads + 1 + (attempt % 32);
      wal->set_schedule(s);
      SearchRequest req;
      req.query.resize(kDim);
      for (float& v : req.query) v = dist(rng);
      req.k = 10;
      req.nprobe = 4;
      (void)db->Search(req);  // may fail with Corruption: that is the point
      db->DropCaches();
      if (!db->Health().quarantined_sq8_partitions.empty()) break;
    }
    wal->set_schedule(FaultSchedule{});
    const HealthReport h = db->Health();
    ASSERT_FALSE(h.quarantined_sq8_partitions.empty());
    ASSERT_EQ(h.verdict, HealthVerdict::kDegradedServing) << h.ToJson();
    ASSERT_GT(h.corruptions_detected, 0u);
  }

  // The healer: tight poll interval and a small batch/budget so the pass
  // demonstrably spans many steps while traffic runs beside it. The
  // trigger is the observed corruption/quarantine above — no cold-start
  // pass, no explicit Scrub().
  HealthMonitor::Options mon;
  mon.interval = std::chrono::milliseconds(5);
  mon.scrub_batch_pages = 8;
  mon.scrub_io_budget_bytes_per_sec = 2ull << 20;  // ~2 MiB/s
  mon.scrub_auto = true;
  HealthMonitor monitor(db.get(), mon);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acked_commits{0};
  std::atomic<uint64_t> commits_during_scrub{0};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<uint64_t> queries_degraded{0};

  // 2 writers: small unique batches; truth inserted before the Upsert.
  // Acked ids are collected per-thread for the durability spot check.
  std::vector<std::vector<std::string>> acked(2);
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      std::mt19937 rng(1000 + w);
      std::uniform_real_distribution<float> dist(-1.f, 1.f);
      for (int n = 0; !stop.load(std::memory_order_relaxed); ++n) {
        std::vector<UpsertRequest> batch(3);
        for (int j = 0; j < 3; ++j) {
          batch[j].asset_id =
              "w" + std::to_string(w) + "_" + std::to_string(n * 3 + j);
          batch[j].vector.resize(kDim);
          for (float& v : batch[j].vector) v = dist(rng);
        }
        {
          std::lock_guard<std::mutex> lock(truth_mutex);
          for (const UpsertRequest& r : batch) truth[r.asset_id] = r.vector;
        }
        const bool scrub_was_active = pager->scrub_state().active;
        Status st = db->Upsert(batch);
        if (st.ok()) {
          acked_commits.fetch_add(1, std::memory_order_relaxed);
          for (const UpsertRequest& r : batch) {
            acked[w].push_back(r.asset_id);
          }
          if (scrub_was_active) {
            commits_during_scrub.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          EXPECT_TRUE(AcceptableFailure(st)) << st.ToString();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // 2 readers: every successful response verifies exactly against ground
  // truth; failures must be explicit integrity errors.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937 rng(2000 + r);
      std::uniform_real_distribution<float> dist(-1.f, 1.f);
      while (!stop.load(std::memory_order_relaxed)) {
        SearchRequest req;
        req.query.resize(kDim);
        for (float& v : req.query) v = dist(rng);
        req.k = 10;
        req.nprobe = 4;
        Result<SearchResponse> resp = db->Search(req);
        if (!resp.ok()) {
          EXPECT_TRUE(AcceptableFailure(resp.status()))
              << resp.status().ToString();
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(truth_mutex);
          for (const ResultItem& item : resp->items) {
            auto it = truth.find(item.asset_id);
            ASSERT_NE(it, truth.end())
                << "fabricated asset id " << item.asset_id;
            const float want = Distance(Metric::kL2, req.query.data(),
                                        it->second.data(), kDim);
            EXPECT_NEAR(item.distance, want, 1e-3f)
                << "wrong distance for " << item.asset_id;
          }
        }
        queries_ok.fetch_add(1, std::memory_order_relaxed);
        if (resp->explain.partitions_quarantined > 0) {
          queries_degraded.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }

  // Wait for the healer to finish a pass and the verdict to settle at
  // healthy — the whole point: no explicit DB::Scrub() anywhere here.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    if (monitor.passes_completed() >= 1 &&
        db->Health().verdict == HealthVerdict::kHealthy) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  monitor.Stop();

  // Healed, by the background healer alone.
  EXPECT_GE(monitor.passes_completed(), 1u);
  const HealthReport h = db->Health();
  EXPECT_EQ(h.verdict, HealthVerdict::kHealthy) << h.ToJson();
  EXPECT_TRUE(h.quarantined_sq8_partitions.empty());
  const ScrubState s = pager->scrub_state();
  EXPECT_GE(s.last_report.corruptions_found, 1u);
  EXPECT_GE(s.last_report.pages_repaired, 1u);
  EXPECT_TRUE(s.last_report.unrepairable.empty());

  // Concurrency assertions: the budgeted scrub was genuinely incremental
  // (many bounded steps) and commits landed while a pass was active.
  EXPECT_LE(s.max_step_pages, mon.scrub_batch_pages);
  EXPECT_GE(monitor.scrub_steps(), 2u);
  EXPECT_GE(acked_commits.load(), 1u);
  EXPECT_GE(commits_during_scrub.load(), 1u);
  EXPECT_GE(queries_ok.load(), 1u);

  // Post-heal: quantized plans with a clean EXPLAIN.
  db->DropCaches();
  {
    SearchRequest req;
    req.query.assign(kDim, 0.1f);
    req.k = 10;
    req.nprobe = 4;
    Result<SearchResponse> resp = db->Search(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->explain.partitions_quarantined, 0u);
    EXPECT_GT(resp->explain.partitions_quantized, 0u);
  }

  // Durability spot check: acked commits are searchable with exact
  // distance 0 (vectors are unique with overwhelming probability).
  std::vector<std::string> sample;
  for (const auto& ids : acked) {
    for (size_t i = 0; i < ids.size(); i += std::max<size_t>(1, ids.size() / 10)) {
      sample.push_back(ids[i]);
    }
  }
  ASSERT_FALSE(sample.empty());
  for (const std::string& id : sample) {
    std::vector<float> vec;
    {
      std::lock_guard<std::mutex> lock(truth_mutex);
      vec = truth[id];
    }
    SearchRequest req;
    req.query = vec;
    req.k = 1;
    req.exact = true;
    Result<SearchResponse> resp = db->Search(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->items.size(), 1u) << id;
    EXPECT_EQ(resp->items[0].asset_id, id);
    EXPECT_NEAR(resp->items[0].distance, 0.f, 1e-4f);
  }

  pager->EndSnapshot(snap);
  EXPECT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace micronn

// SQ8 quantized scan path: codec round-trips, asymmetric kernel parity,
// sidecar consistency across the whole write/maintenance lifecycle,
// recall parity against the float path, batch/sequential parity with
// quantized plans, and the EXPLAIN rerank counters.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <map>
#include <random>

#include "core/db.h"
#include "datagen/dataset.h"
#include "ivf/maintenance.h"
#include "ivf/schema.h"
#include "ivf/search.h"
#include "numerics/distance.h"
#include "numerics/sq8.h"
#include "query/predicate.h"
#include "storage/key_encoding.h"

namespace micronn {
namespace {

// ---------------------------------------------------------------------------
// Codec and kernel unit tests
// ---------------------------------------------------------------------------

TEST(Sq8CodecTest, RoundTripWithinHalfScale) {
  std::mt19937 rng(7);
  for (const size_t dim : {1u, 7u, 16u, 33u, 128u}) {
    std::vector<float> min(dim), scale(dim), v(dim), deq(dim);
    std::vector<uint8_t> codes(dim);
    std::uniform_real_distribution<float> lo(-2.f, 2.f);
    std::uniform_real_distribution<float> range(0.01f, 3.f);
    for (size_t d = 0; d < dim; ++d) {
      min[d] = lo(rng);
      scale[d] = range(rng) / 255.f;
    }
    for (int iter = 0; iter < 50; ++iter) {
      for (size_t d = 0; d < dim; ++d) {
        std::uniform_real_distribution<float> in_box(
            min[d], min[d] + 255.f * scale[d]);
        v[d] = in_box(rng);
      }
      QuantizeSq8(v.data(), min.data(), scale.data(), dim, codes.data());
      DequantizeSq8(codes.data(), min.data(), scale.data(), dim, deq.data());
      for (size_t d = 0; d < dim; ++d) {
        EXPECT_LE(std::abs(deq[d] - v[d]), scale[d] / 2 + 1e-6f)
            << "dim " << d;
      }
    }
  }
}

TEST(Sq8CodecTest, SaturatesOutOfRange) {
  const size_t dim = 4;
  const std::vector<float> min = {0.f, 0.f, 0.f, 0.f};
  const std::vector<float> scale = {0.01f, 0.01f, 0.01f, 0.01f};
  const std::vector<float> v = {-5.f, 100.f, 1.0f, 2.55f};
  std::vector<uint8_t> codes(dim);
  QuantizeSq8(v.data(), min.data(), scale.data(), dim, codes.data());
  EXPECT_EQ(codes[0], 0);      // below the box
  EXPECT_EQ(codes[1], 255);    // above the box
  EXPECT_EQ(codes[2], 100);    // interior
  EXPECT_EQ(codes[3], 255);    // exactly at the top
}

TEST(Sq8CodecTest, ZeroScaleEncodesConstantDimensionExactly) {
  const size_t dim = 3;
  const std::vector<float> min = {1.5f, -2.f, 0.f};
  const std::vector<float> scale = {0.f, 0.01f, 0.f};
  const std::vector<float> v = {1.5f, -1.f, 0.f};
  std::vector<uint8_t> codes(dim);
  std::vector<float> deq(dim);
  QuantizeSq8(v.data(), min.data(), scale.data(), dim, codes.data());
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[2], 0);
  DequantizeSq8(codes.data(), min.data(), scale.data(), dim, deq.data());
  EXPECT_EQ(deq[0], 1.5f);
  EXPECT_EQ(deq[2], 0.f);
}

TEST(Sq8ParamsTest, CodecRoundTrip) {
  Sq8PartitionParams params;
  params.min = {0.25f, -1.f, 3.5f};
  params.scale = {0.01f, 0.f, 2.f};
  const std::string blob = EncodeSq8Params(params);
  Sq8PartitionParams out;
  ASSERT_TRUE(DecodeSq8Params(blob, 3, &out).ok());
  EXPECT_EQ(out.min, params.min);
  EXPECT_EQ(out.scale, params.scale);
  EXPECT_FALSE(DecodeSq8Params(blob, 4, &out).ok());
}

TEST(Sq8BoundsTest, FinalizeDerivesAffineParams) {
  Sq8BoundsAccumulator bounds;
  bounds.Reset(2);
  const float a[2] = {1.f, -1.f};
  const float b[2] = {3.f, -1.f};
  bounds.Add(a, 2);
  bounds.Add(b, 2);
  const Sq8PartitionParams params = FinalizeSq8Params(bounds);
  EXPECT_FLOAT_EQ(params.min[0], 1.f);
  EXPECT_FLOAT_EQ(params.scale[0], 2.f / 255.f);
  EXPECT_FLOAT_EQ(params.min[1], -1.f);
  EXPECT_FLOAT_EQ(params.scale[1], 0.f);  // constant dimension
}

// The asymmetric kernels must agree with the full-precision distance to
// the reconstructed vector, for every metric and across SIMD tiers.
TEST(Sq8KernelTest, MatchesDequantizedDistanceAcrossSimdTiers) {
  std::mt19937 rng(11);
  const SimdLevel original = ActiveSimdLevel();
  for (const size_t dim : {8u, 31u, 64u, 128u}) {
    const size_t n = 37;
    std::vector<float> min(dim), scale(dim), query(dim);
    std::vector<uint8_t> codes(n * dim);
    std::uniform_real_distribution<float> unit(-1.f, 1.f);
    std::uniform_int_distribution<int> byte(0, 255);
    for (size_t d = 0; d < dim; ++d) {
      min[d] = unit(rng);
      scale[d] = (unit(rng) + 1.5f) / 255.f;
      query[d] = unit(rng);
    }
    for (auto& c : codes) c = static_cast<uint8_t>(byte(rng));
    for (const Metric metric :
         {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
      // Reference: full-precision distance to the reconstruction.
      std::vector<float> expected(n), deq(dim);
      for (size_t i = 0; i < n; ++i) {
        DequantizeSq8(codes.data() + i * dim, min.data(), scale.data(), dim,
                      deq.data());
        expected[i] = Distance(metric, query.data(), deq.data(), dim);
      }
      for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
        SetSimdLevel(level);
        Sq8QueryContext ctx;
        ctx.Prepare(metric, query.data(), min.data(), scale.data(), dim);
        std::vector<float> got(n);
        Sq8DistanceOneToMany(ctx, codes.data(), n, got.data());
        for (size_t i = 0; i < n; ++i) {
          EXPECT_NEAR(got[i], expected[i],
                      1e-3f * (1.f + std::abs(expected[i])))
              << "metric " << static_cast<int>(metric) << " level "
              << static_cast<int>(level) << " dim " << dim << " row " << i;
        }
      }
      SetSimdLevel(original);
    }
  }
}

// ---------------------------------------------------------------------------
// DB-level tests
// ---------------------------------------------------------------------------

class Sq8DbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_sq8_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "test.mnn";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DbOptions SmallOptions(uint32_t dim, Metric metric = Metric::kL2) {
    DbOptions options;
    options.dim = dim;
    options.metric = metric;
    options.target_cluster_size = 50;
    options.minibatch_size = 256;
    options.train_iterations = 20;
    options.default_nprobe = 4;
    options.rebuild_chunk_rows = 512;
    return options;
  }

  std::unique_ptr<DB> LoadDataset(const Dataset& ds, DbOptions options,
                                  bool with_attrs = false) {
    auto db = DB::Open(path_, options).value();
    std::vector<UpsertRequest> batch;
    for (size_t i = 0; i < ds.spec.n; ++i) {
      UpsertRequest req;
      req.asset_id = "a" + std::to_string(i);
      req.vector.assign(ds.row(i), ds.row(i) + ds.spec.dim);
      if (with_attrs) {
        req.attributes["bucket"] =
            AttributeValue::Int(static_cast<int64_t>(i % 10));
      }
      batch.push_back(std::move(req));
      if (batch.size() == 1000) {
        EXPECT_TRUE(db->Upsert(batch).ok());
        batch.clear();
      }
    }
    if (!batch.empty()) EXPECT_TRUE(db->Upsert(batch).ok());
    return db;
  }

  // The SQ8 storage invariant: whenever a partition has parameters, its
  // sidecar rows mirror the float rows key-for-key and every code byte is
  // exactly what re-quantizing the stored float row would produce; a
  // partition without parameters has no sidecar rows. No orphans either
  // direction.
  void VerifySidecar(DB* db) {
    const uint32_t dim = db->options().dim;
    auto txn = db->engine()->BeginRead().value();
    BTree vectors = txn->OpenTable(kVectorsTable).value();
    BTree sq8 = txn->OpenTable(kSq8Table).value();
    BTree sq8params = txn->OpenTable(kSq8ParamsTable).value();

    std::map<uint32_t, Sq8PartitionParams> params;
    {
      BTreeCursor c = sq8params.NewCursor();
      ASSERT_TRUE(c.SeekToFirst().ok());
      while (c.Valid()) {
        std::string_view key = c.key();
        uint32_t partition;
        ASSERT_TRUE(key::ConsumeU32(&key, &partition));
        Sq8PartitionParams p;
        ASSERT_TRUE(DecodeSq8Params(c.value().value(), dim, &p).ok());
        params.emplace(partition, std::move(p));
        ASSERT_TRUE(c.Next().ok());
      }
    }

    size_t float_rows = 0;
    size_t quantized_rows = 0;
    std::vector<uint8_t> expect(dim);
    {
      BTreeCursor c = vectors.NewCursor();
      ASSERT_TRUE(c.SeekToFirst().ok());
      while (c.Valid()) {
        uint32_t partition;
        uint64_t vid;
        ASSERT_TRUE(ParseVectorKey(c.key(), &partition, &vid).ok());
        VectorRow row;
        const std::string value = c.value().value();
        ASSERT_TRUE(DecodeVectorRow(value, dim, &row).ok());
        ++float_rows;
        auto sq8_row = sq8.Get(VectorKey(partition, vid)).value();
        auto it = params.find(partition);
        if (it == params.end()) {
          EXPECT_FALSE(sq8_row.has_value())
              << "sidecar row without params, partition " << partition;
        } else {
          ASSERT_TRUE(sq8_row.has_value())
              << "missing sidecar row, partition " << partition << " vid "
              << vid;
          const uint8_t* codes = DecodeSq8Row(*sq8_row, dim).value();
          // The blob sits at an arbitrary offset inside the row encoding;
          // copy it out so the float loads are aligned.
          std::vector<float> vec(dim);
          std::memcpy(vec.data(), row.vector_blob.data(),
                      dim * sizeof(float));
          QuantizeSq8(vec.data(), it->second.min.data(),
                      it->second.scale.data(), dim, expect.data());
          EXPECT_EQ(0, std::memcmp(codes, expect.data(), dim))
              << "stale codes, partition " << partition << " vid " << vid;
          ++quantized_rows;
        }
        ASSERT_TRUE(c.Next().ok());
      }
    }
    // No orphans: every sidecar row has a float row.
    size_t sidecar_rows = 0;
    {
      BTreeCursor c = sq8.NewCursor();
      ASSERT_TRUE(c.SeekToFirst().ok());
      while (c.Valid()) {
        uint32_t partition;
        uint64_t vid;
        ASSERT_TRUE(ParseVectorKey(c.key(), &partition, &vid).ok());
        EXPECT_TRUE(vectors.Get(VectorKey(partition, vid)).value().has_value())
            << "orphan sidecar row, partition " << partition << " vid "
            << vid;
        ++sidecar_rows;
        ASSERT_TRUE(c.Next().ok());
      }
    }
    EXPECT_EQ(sidecar_rows, quantized_rows);
    (void)float_rows;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(Sq8DbTest, SidecarMaintainedAcrossLifecycle) {
  DatasetSpec spec;
  spec.name = "sq8-lifecycle";
  spec.dim = 16;
  spec.n = 1500;
  spec.n_queries = 4;
  Dataset ds = GenerateDataset(spec);
  auto db = LoadDataset(ds, SmallOptions(spec.dim));

  // Before the first build there are no params and no sidecar rows.
  VerifySidecar(db.get());
  ASSERT_TRUE(db->BuildIndex().ok());
  VerifySidecar(db.get());

  // Post-build upserts quantize into the delta store with global params.
  std::vector<UpsertRequest> extra;
  for (size_t i = 0; i < 200; ++i) {
    UpsertRequest req;
    req.asset_id = "x" + std::to_string(i);
    req.vector.assign(ds.row(i % ds.spec.n), ds.row(i % ds.spec.n) + spec.dim);
    for (float& f : req.vector) f += 0.05f;
    extra.push_back(std::move(req));
  }
  ASSERT_TRUE(db->Upsert(extra).ok());
  VerifySidecar(db.get());

  // Replaces and deletes keep the sidecar in sync.
  std::vector<UpsertRequest> replace(extra.begin(), extra.begin() + 50);
  for (auto& req : replace) {
    for (float& f : req.vector) f -= 0.1f;
  }
  ASSERT_TRUE(db->Upsert(replace).ok());
  std::vector<std::string> doomed;
  for (size_t i = 0; i < 100; ++i) doomed.push_back("a" + std::to_string(i));
  ASSERT_TRUE(db->Delete(doomed).ok());
  VerifySidecar(db.get());

  // The delta flush re-quantizes moved rows with destination params.
  auto report = db->Maintain().value();
  EXPECT_GT(report.delta_flushed + (report.full_rebuild ? 1u : 0u), 0u);
  VerifySidecar(db.get());

  // And a full rebuild re-derives everything.
  ASSERT_TRUE(db->BuildIndex().ok());
  VerifySidecar(db.get());
}

TEST_F(Sq8DbTest, RecallParityWithFloatPath) {
  DatasetSpec spec;
  spec.name = "sq8-recall";
  spec.dim = 32;
  spec.n = 4000;
  spec.n_queries = 40;
  Dataset ds = GenerateDataset(spec);
  auto db = LoadDataset(ds, SmallOptions(spec.dim));
  ASSERT_TRUE(db->BuildIndex().ok());
  const auto truth = BruteForceGroundTruth(ds, 10, /*id_base=*/1);

  double recall_float = 0;
  double recall_sq8 = 0;
  for (size_t q = 0; q < spec.n_queries; ++q) {
    SearchRequest req;
    req.query.assign(ds.query(q), ds.query(q) + spec.dim);
    req.k = 10;
    req.nprobe = 8;

    req.quantized = false;
    auto float_resp = db->Search(req).value();
    EXPECT_FALSE(float_resp.explain.quantized);

    req.quantized = true;
    auto sq8_resp = db->Search(req).value();
    EXPECT_TRUE(sq8_resp.explain.quantized);
    EXPECT_GT(sq8_resp.explain.rerank_candidates, 0u);

    auto to_neighbors = [](const SearchResponse& resp) {
      std::vector<Neighbor> out;
      for (const auto& item : resp.items) {
        out.push_back({item.vid, item.distance});
      }
      return out;
    };
    recall_float += RecallAtK(to_neighbors(float_resp), truth[q]);
    recall_sq8 += RecallAtK(to_neighbors(sq8_resp), truth[q]);
  }
  recall_float /= spec.n_queries;
  recall_sq8 /= spec.n_queries;
  EXPECT_GE(recall_sq8, 0.95 * recall_float)
      << "sq8 recall " << recall_sq8 << " vs float " << recall_float;
  // Guard against both paths being uniformly broken: parity alone would
  // also hold at recall zero.
  EXPECT_GT(recall_sq8, 0.5);
}

TEST_F(Sq8DbTest, ExplainReportsRerankCounters) {
  DatasetSpec spec;
  spec.name = "sq8-explain";
  spec.dim = 16;
  spec.n = 1200;
  spec.n_queries = 2;
  Dataset ds = GenerateDataset(spec);
  auto db = LoadDataset(ds, SmallOptions(spec.dim));

  SearchRequest req;
  req.query.assign(ds.query(0), ds.query(0) + spec.dim);
  req.k = 10;
  req.nprobe = 4;

  // Pre-build: no params anywhere, so a quantized plan degenerates to the
  // float path (no rerank reads) but still answers from the delta store.
  auto resp = db->Search(req).value();
  EXPECT_FALSE(resp.explain.quantized);
  EXPECT_EQ(resp.explain.partitions_quantized, 0u);
  EXPECT_EQ(resp.explain.rows_reranked, 0u);
  EXPECT_EQ(resp.items.size(), 10u);

  ASSERT_TRUE(db->BuildIndex().ok());
  resp = db->Search(req).value();
  EXPECT_TRUE(resp.explain.quantized);
  EXPECT_GT(resp.explain.partitions_quantized, 0u);
  EXPECT_EQ(resp.explain.rerank_budget, 40u);  // k * alpha (4.0 default)
  EXPECT_GT(resp.explain.rerank_candidates, 0u);
  EXPECT_LE(resp.explain.rerank_candidates, resp.explain.rerank_budget);
  EXPECT_EQ(resp.explain.rows_reranked, resp.explain.rerank_candidates);
  EXPECT_NE(resp.explain.ToString().find("sq8["), std::string::npos);

  // The per-request opt-out wins over the DB default.
  req.quantized = false;
  resp = db->Search(req).value();
  EXPECT_FALSE(resp.explain.quantized);
  EXPECT_EQ(resp.explain.rows_reranked, 0u);

  // Exact plans never use the quantized path.
  req.quantized = std::nullopt;
  req.exact = true;
  resp = db->Search(req).value();
  EXPECT_EQ(resp.plan, QueryPlan::kExact);
  EXPECT_FALSE(resp.explain.quantized);
}

TEST_F(Sq8DbTest, QuantizedBatchMatchesSequential) {
  DatasetSpec spec;
  spec.name = "sq8-batch";
  spec.dim = 24;
  spec.n = 2500;
  spec.n_queries = 24;
  Dataset ds = GenerateDataset(spec);
  auto db = LoadDataset(ds, SmallOptions(spec.dim), /*with_attrs=*/true);
  ASSERT_TRUE(db->BuildIndex().ok());
  ASSERT_TRUE(db->AnalyzeStats().ok());

  // Heterogeneous batch: mixed k/nprobe, duplicate filters (planner-level
  // dedup), distinct filters on one shared scan (per-row shared decode),
  // unfiltered, and exact members.
  std::vector<SearchRequest> requests;
  for (size_t q = 0; q < 16; ++q) {
    SearchRequest req;
    req.query.assign(ds.query(q), ds.query(q) + spec.dim);
    req.k = (q % 3 == 0) ? 5 : 10;
    req.nprobe = (q % 2 == 0) ? 4 : 8;
    if (q % 4 == 1) {
      req.filter = Predicate::Compare("bucket", CompareOp::kEq,
                                      AttributeValue::Int(3));
      req.plan = PlanOverride::kForcePostFilter;
    } else if (q % 4 == 2) {
      req.filter = Predicate::Compare(
          "bucket", CompareOp::kLt,
          AttributeValue::Int(static_cast<int64_t>(2 + q % 5)));
      req.plan = PlanOverride::kForcePostFilter;
    } else if (q % 8 == 7) {
      req.exact = true;
    }
    requests.push_back(std::move(req));
  }

  auto batch = db->BatchSearch(requests).value();
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t q = 0; q < requests.size(); ++q) {
    auto single = db->Search(requests[q]).value();
    ASSERT_EQ(batch[q].items.size(), single.items.size()) << "query " << q;
    for (size_t i = 0; i < single.items.size(); ++i) {
      EXPECT_EQ(batch[q].items[i].vid, single.items[i].vid)
          << "query " << q << " rank " << i;
      EXPECT_EQ(batch[q].items[i].distance, single.items[i].distance)
          << "query " << q << " rank " << i;
    }
    EXPECT_EQ(batch[q].rows_filtered, single.rows_filtered) << "query " << q;
    EXPECT_EQ(batch[q].explain.quantized, single.explain.quantized)
        << "query " << q;
  }
}

// Duplicate predicates across a batch must collapse into one filter
// evaluation per row: the whole fan-in shares one bound filter, so the
// scan runs it below row decode exactly once (observable through the
// physical filter counters of the shared scan).
TEST_F(Sq8DbTest, DuplicateBatchFiltersShareEvaluation) {
  DatasetSpec spec;
  spec.name = "sq8-dupfilter";
  spec.dim = 12;
  spec.n = 900;
  spec.n_queries = 8;
  Dataset ds = GenerateDataset(spec);
  auto db = LoadDataset(ds, SmallOptions(spec.dim), /*with_attrs=*/true);
  ASSERT_TRUE(db->BuildIndex().ok());

  std::vector<SearchRequest> requests;
  for (size_t q = 0; q < 6; ++q) {
    SearchRequest req;
    // One shared query point: every member probes the same partitions, so
    // all scans have the full fan-in.
    req.query.assign(ds.query(0), ds.query(0) + spec.dim);
    req.k = 10;
    req.nprobe = 4;
    req.filter = Predicate::Compare("bucket", CompareOp::kEq,
                                    AttributeValue::Int(3));
    req.plan = PlanOverride::kForcePostFilter;
    requests.push_back(std::move(req));
  }
  auto batch = db->BatchSearch(requests).value();
  // Identical predicates bind to one shared filter -> the scan pushes it
  // below decode and each row is filtered once for the whole group: the
  // group-level rows_scanned equals one query's surviving rows, not six
  // times that.
  const uint64_t group_rows = batch[0].explain.group_rows_scanned;
  const uint64_t per_query_rows = batch[0].rows_scanned;
  EXPECT_EQ(group_rows, per_query_rows);
  for (const auto& resp : batch) {
    EXPECT_TRUE(resp.explain.shared_scan);
    EXPECT_EQ(resp.rows_scanned, per_query_rows);
  }
}

// Drift requantization (DbOptions::sq8_requantize_saturation): a stream
// of delta flushes carrying vectors far outside a partition's built box
// saturates its codes; Maintain() must detect the ratio and requantize
// the partition in place with fresh bounds, keeping sidecar consistency
// and quantized/float recall parity for the drifted data.
TEST_F(Sq8DbTest, DriftRequantizationRefreshesBounds) {
  DatasetSpec spec;
  spec.name = "sq8-drift";
  spec.dim = 16;
  spec.n = 1500;
  spec.n_queries = 4;
  Dataset ds = GenerateDataset(spec);
  // rebuild_chunk_rows = 0: the chunked requantization loops (build
  // phase 3.5 and the drift pass below) must floor the chunk and make
  // progress, not spin on an empty transaction.
  DbOptions drift_options = SmallOptions(spec.dim);
  drift_options.rebuild_chunk_rows = 0;
  auto db = LoadDataset(ds, drift_options);
  ASSERT_TRUE(db->BuildIndex().ok());

  // Upper bound of the built boxes (the dataset lives roughly in the
  // unit box, so this lands near 1).
  auto max_bound = [&](DB* handle) {
    double bound = 0;
    auto txn = handle->engine()->BeginRead().value();
    BTree sq8params = txn->OpenTable(kSq8ParamsTable).value();
    BTreeCursor c = sq8params.NewCursor();
    EXPECT_TRUE(c.SeekToFirst().ok());
    while (c.Valid()) {
      std::string_view key = c.key();
      uint32_t partition;
      EXPECT_TRUE(key::ConsumeU32(&key, &partition));
      if (partition != kDeltaPartition) {  // global bounds excluded
        Sq8PartitionParams p;
        EXPECT_TRUE(DecodeSq8Params(c.value().value(), spec.dim, &p).ok());
        for (uint32_t d = 0; d < spec.dim; ++d) {
          bound = std::max(bound,
                           double{p.min[d]} + 255.0 * double{p.scale[d]});
        }
      }
      EXPECT_TRUE(c.Next().ok());
    }
    return bound;
  };
  const double built_bound = max_bound(db.get());

  // Drift: 120 vectors shifted far outside every built box. They land in
  // the delta store and flush into their nearest partitions with heavily
  // saturated codes.
  std::vector<UpsertRequest> drifted;
  for (size_t i = 0; i < 120; ++i) {
    UpsertRequest req;
    req.asset_id = "drift" + std::to_string(i);
    req.vector.assign(ds.row(i), ds.row(i) + spec.dim);
    for (float& f : req.vector) f += 5.0f;
    drifted.push_back(std::move(req));
  }
  ASSERT_TRUE(db->Upsert(drifted).ok());

  auto report = db->Maintain().value();
  ASSERT_FALSE(report.full_rebuild);  // stays incremental at +8% rows
  EXPECT_EQ(report.delta_flushed, drifted.size());
  EXPECT_GT(report.partitions_requantized, 0u);
  VerifySidecar(db.get());

  // Fresh bounds cover the drifted data; the built boxes did not.
  EXPECT_LT(built_bound, 4.0);
  EXPECT_GT(max_bound(db.get()), 4.0);

  // Recall parity on the drifted region: the quantized scan must rank the
  // requantized rows exactly like the float path.
  for (size_t q = 0; q < 8; ++q) {
    SearchRequest req;
    req.query = drifted[q].vector;
    req.k = 5;
    req.nprobe = 8;
    req.quantized = false;
    auto float_resp = db->Search(req).value();
    req.quantized = true;
    auto sq8_resp = db->Search(req).value();
    ASSERT_EQ(sq8_resp.items.size(), float_resp.items.size()) << q;
    for (size_t i = 0; i < float_resp.items.size(); ++i) {
      EXPECT_EQ(sq8_resp.items[i].vid, float_resp.items[i].vid)
          << q << " " << i;
      EXPECT_EQ(sq8_resp.items[i].distance, float_resp.items[i].distance)
          << q << " " << i;
    }
    EXPECT_EQ(sq8_resp.items[0].asset_id, drifted[q].asset_id) << q;
    EXPECT_FLOAT_EQ(sq8_resp.items[0].distance, 0.f) << q;
  }
  ASSERT_TRUE(db->Close().ok());

  // Disabled threshold: same drift, no requantization.
  std::filesystem::remove_all(dir_);
  std::filesystem::create_directories(dir_);
  DbOptions options = SmallOptions(spec.dim);
  options.sq8_requantize_saturation = 0;
  db = LoadDataset(ds, options);
  ASSERT_TRUE(db->BuildIndex().ok());
  ASSERT_TRUE(db->Upsert(drifted).ok());
  report = db->Maintain().value();
  ASSERT_FALSE(report.full_rebuild);
  EXPECT_EQ(report.delta_flushed, drifted.size());
  EXPECT_EQ(report.partitions_requantized, 0u);
  EXPECT_LT(max_bound(db.get()), 4.0);  // bounds stayed stale
  VerifySidecar(db.get());
}

}  // namespace
}  // namespace micronn

// B+Tree tests: basic operations, splits, overflow values, deletion,
// cursors, and a property-based model check against std::map.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>

#include "common/rng.h"
#include "storage/btree.h"
#include "storage/engine.h"
#include "storage/key_encoding.h"
#include "storage/pager.h"

namespace micronn {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_btree_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    pager_ = Pager::Open(dir_ / "db", PagerOptions{}).value();
    txn_ = pager_->BeginWrite().value();
    view_ = std::make_unique<WriteView>(pager_.get(), txn_.get());
    root_ = BTree::Create(view_.get()).value();
  }
  void TearDown() override {
    view_.reset();
    if (txn_) pager_->RollbackWrite(std::move(txn_));
    pager_.reset();
    std::filesystem::remove_all(dir_);
  }

  BTree Tree() { return BTree(view_.get(), root_); }

  std::filesystem::path dir_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<WriteTxnState> txn_;
  std::unique_ptr<WriteView> view_;
  PageId root_;
};

TEST_F(BTreeTest, EmptyTreeGetsNothing) {
  BTree t = Tree();
  auto r = t.Get("absent");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
  BTreeCursor c = t.NewCursor();
  ASSERT_TRUE(c.SeekToFirst().ok());
  EXPECT_FALSE(c.Valid());
}

TEST_F(BTreeTest, PutGetSingle) {
  BTree t = Tree();
  ASSERT_TRUE(t.Put("key", "value").ok());
  auto r = t.Get("key");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ(**r, "value");
}

TEST_F(BTreeTest, PutReplacesExisting) {
  BTree t = Tree();
  ASSERT_TRUE(t.Put("key", "v1").ok());
  ASSERT_TRUE(t.Put("key", "v2-longer-than-before").ok());
  EXPECT_EQ(*t.Get("key").value(), "v2-longer-than-before");
  ASSERT_TRUE(t.Put("key", "s").ok());
  EXPECT_EQ(*t.Get("key").value(), "s");
}

TEST_F(BTreeTest, RejectsOversizeAndEmptyKeys) {
  BTree t = Tree();
  EXPECT_FALSE(t.Put("", "v").ok());
  EXPECT_FALSE(t.Put(std::string(kMaxKeySize + 1, 'k'), "v").ok());
  EXPECT_TRUE(t.Put(std::string(kMaxKeySize, 'k'), "v").ok());
}

TEST_F(BTreeTest, ManyInsertsForceSplits) {
  BTree t = Tree();
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Put(key::U64(i * 7919 % n), "value-" +
                      std::to_string(i * 7919 % n)).ok());
  }
  ASSERT_TRUE(t.CheckIntegrity().ok());
  for (int i = 0; i < n; ++i) {
    auto r = t.Get(key::U64(i));
    ASSERT_TRUE(r.ok()) << i;
    ASSERT_TRUE(r->has_value()) << i;
    EXPECT_EQ(**r, "value-" + std::to_string(i));
  }
}

TEST_F(BTreeTest, SequentialInsertStaysCompact) {
  // The append-optimized split should keep sorted bulk loads working and
  // the tree structurally valid.
  BTree t = Tree();
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(t.Put(key::U64(i), std::string(50, 'a' + i % 26)).ok());
  }
  ASSERT_TRUE(t.CheckIntegrity().ok());
  BTreeCursor c = t.NewCursor();
  ASSERT_TRUE(c.SeekToFirst().ok());
  int count = 0;
  while (c.Valid()) {
    ++count;
    ASSERT_TRUE(c.Next().ok());
  }
  EXPECT_EQ(count, 3000);
}

TEST_F(BTreeTest, OverflowValuesRoundTrip) {
  BTree t = Tree();
  // Values above kMaxInlineValue (1 KiB) spill to overflow chains; test
  // one-page and multi-page chains, including exactly-at-boundary sizes.
  for (size_t len : {kMaxInlineValue, kMaxInlineValue + 1, kPageSize - 10,
                     kPageSize, 3 * kPageSize + 123, size_t{40000}}) {
    std::string v(len, 'x');
    for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(t.Put("k" + std::to_string(len), v).ok());
    auto r = t.Get("k" + std::to_string(len));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, v) << len;
  }
  ASSERT_TRUE(t.CheckIntegrity().ok());
}

TEST_F(BTreeTest, CursorValueViewBorrowsInlineAndSpillsOverflow) {
  BTree t = Tree();
  std::string big(3 * kMaxInlineValue, 'x');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + i % 26);
  }
  ASSERT_TRUE(t.Put("a_inline", "small value").ok());
  ASSERT_TRUE(t.Put("b_overflow", big).ok());

  BTreeCursor c = t.NewCursor();
  ASSERT_TRUE(c.SeekToFirst().ok());
  ASSERT_TRUE(c.Valid());
  std::string storage;
  auto inline_view = c.ValueView(&storage);
  ASSERT_TRUE(inline_view.ok());
  EXPECT_EQ(*inline_view, "small value");
  // Inline values are borrowed from the leaf page, not copied out.
  EXPECT_TRUE(storage.empty());
  EXPECT_NE(static_cast<const void*>(inline_view->data()),
            static_cast<const void*>(storage.data()));

  ASSERT_TRUE(c.Next().ok());
  ASSERT_TRUE(c.Valid());
  auto overflow_view = c.ValueView(&storage);
  ASSERT_TRUE(overflow_view.ok());
  EXPECT_EQ(*overflow_view, big);
  // Overflow values materialize into the caller's spill buffer.
  EXPECT_EQ(static_cast<const void*>(overflow_view->data()),
            static_cast<const void*>(storage.data()));

  // Both accessors agree.
  EXPECT_EQ(c.value().value(), *overflow_view);
}

TEST_F(BTreeTest, OverflowChainsFreedOnDeleteAndReplace) {
  BTree t = Tree();
  const std::string big(10 * kPageSize, 'z');
  ASSERT_TRUE(t.Put("big", big).ok());
  // Replacing with an inline value must free the old chain; the pages
  // should be reusable.
  ASSERT_TRUE(t.Put("big", "small").ok());
  EXPECT_EQ(*t.Get("big").value(), "small");
  ASSERT_TRUE(t.Put("big2", big).ok());
  ASSERT_TRUE(t.Delete("big2").value());
  EXPECT_FALSE(t.Get("big2").value().has_value());
  ASSERT_TRUE(t.CheckIntegrity().ok());
}

TEST_F(BTreeTest, DeleteMissingReturnsFalse) {
  BTree t = Tree();
  ASSERT_TRUE(t.Put("a", "1").ok());
  EXPECT_FALSE(t.Delete("b").value());
  EXPECT_TRUE(t.Delete("a").value());
  EXPECT_FALSE(t.Delete("a").value());
}

TEST_F(BTreeTest, DeleteEverythingLeavesEmptyTree) {
  BTree t = Tree();
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Put(key::U64(i), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Delete(key::U64(i)).value()) << i;
  }
  ASSERT_TRUE(t.CheckIntegrity().ok());
  BTreeCursor c = t.NewCursor();
  ASSERT_TRUE(c.SeekToFirst().ok());
  EXPECT_FALSE(c.Valid());
  // The tree must be reusable after total deletion.
  ASSERT_TRUE(t.Put("again", "yes").ok());
  EXPECT_EQ(*t.Get("again").value(), "yes");
}

TEST_F(BTreeTest, CursorFullScanIsSorted) {
  BTree t = Tree();
  Rng rng(42);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    const std::string k = key::U64(rng.Uniform(100000));
    const std::string v = "v" + std::to_string(i);
    model[k] = v;
    ASSERT_TRUE(t.Put(k, v).ok());
  }
  BTreeCursor c = t.NewCursor();
  ASSERT_TRUE(c.SeekToFirst().ok());
  auto it = model.begin();
  while (c.Valid()) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(c.key(), it->first);
    EXPECT_EQ(c.value().value(), it->second);
    ASSERT_TRUE(c.Next().ok());
    ++it;
  }
  EXPECT_EQ(it, model.end());
}

TEST_F(BTreeTest, CursorSeekFindsLowerBound) {
  BTree t = Tree();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Put(key::U64(i * 10), "v").ok());
  }
  BTreeCursor c = t.NewCursor();
  ASSERT_TRUE(c.Seek(key::U64(55)).ok());
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), key::U64(60));
  ASSERT_TRUE(c.Seek(key::U64(60)).ok());
  EXPECT_EQ(c.key(), key::U64(60));
  ASSERT_TRUE(c.Seek(key::U64(2000)).ok());
  EXPECT_FALSE(c.Valid());
  ASSERT_TRUE(c.Seek(key::U64(0)).ok());
  EXPECT_EQ(c.key(), key::U64(0));
}

TEST_F(BTreeTest, PrefixRangeScan) {
  BTree t = Tree();
  // Emulate the (partition, vector) clustered key of the Vectors table.
  for (uint32_t part = 1; part <= 5; ++part) {
    for (uint64_t vid = 0; vid < 50; ++vid) {
      std::string k;
      key::AppendU32(&k, part);
      key::AppendU64(&k, vid);
      ASSERT_TRUE(t.Put(k, std::to_string(part * 1000 + vid)).ok());
    }
  }
  // Scan exactly partition 3 via prefix seek.
  const std::string prefix = key::U32(3);
  BTreeCursor c = t.NewCursor();
  ASSERT_TRUE(c.Seek(prefix).ok());
  int count = 0;
  while (c.Valid() && c.key().substr(0, 4) == prefix) {
    std::string_view rest = c.key().substr(4);
    uint64_t vid;
    ASSERT_TRUE(key::ConsumeU64(&rest, &vid));
    EXPECT_EQ(c.value().value(), std::to_string(3000 + vid));
    ++count;
    ASSERT_TRUE(c.Next().ok());
  }
  EXPECT_EQ(count, 50);
}

TEST_F(BTreeTest, ClearFreesAndResets) {
  BTree t = Tree();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.Put(key::U64(i), std::string(2000, 'v')).ok());
  }
  ASSERT_TRUE(t.Clear().ok());
  BTreeCursor c = t.NewCursor();
  ASSERT_TRUE(c.SeekToFirst().ok());
  EXPECT_FALSE(c.Valid());
  ASSERT_TRUE(t.Put("x", "y").ok());
  EXPECT_EQ(*t.Get("x").value(), "y");
  ASSERT_TRUE(t.CheckIntegrity().ok());
}

// Property test: random interleaved Put/Delete/Get streams must match a
// std::map model exactly, across several seeds and value-size regimes.
struct ModelParam {
  uint64_t seed;
  size_t max_value_len;
  int ops;
};

class BTreeModelTest : public ::testing::TestWithParam<ModelParam> {};

TEST_P(BTreeModelTest, MatchesStdMap) {
  const ModelParam param = GetParam();
  const auto dir = std::filesystem::temp_directory_path() /
                   ("micronn_btree_model_" + std::to_string(::getpid()) +
                    "_" + std::to_string(param.seed) + "_" +
                    std::to_string(param.max_value_len));
  std::filesystem::create_directories(dir);
  {
    auto pager = Pager::Open(dir / "db", PagerOptions{}).value();
    auto txn = pager->BeginWrite().value();
    WriteView view(pager.get(), txn.get());
    const PageId root = BTree::Create(&view).value();
    BTree tree(&view, root);

    Rng rng(param.seed);
    std::map<std::string, std::string> model;
    const uint64_t key_space = 500;
    for (int op = 0; op < param.ops; ++op) {
      const std::string k = key::U64(rng.Uniform(key_space));
      const uint64_t action = rng.Uniform(10);
      if (action < 6) {  // Put
        const size_t len = rng.Uniform(param.max_value_len + 1);
        std::string v(len, '\0');
        for (auto& ch : v) ch = static_cast<char>('a' + rng.Uniform(26));
        ASSERT_TRUE(tree.Put(k, v).ok());
        model[k] = v;
      } else if (action < 9) {  // Delete
        auto erased = tree.Delete(k);
        ASSERT_TRUE(erased.ok());
        EXPECT_EQ(*erased, model.erase(k) > 0) << "op " << op;
      } else {  // Get
        auto got = tree.Get(k);
        ASSERT_TRUE(got.ok());
        auto it = model.find(k);
        if (it == model.end()) {
          EXPECT_FALSE(got->has_value()) << "op " << op;
        } else {
          ASSERT_TRUE(got->has_value()) << "op " << op;
          EXPECT_EQ(**got, it->second) << "op " << op;
        }
      }
    }
    ASSERT_TRUE(tree.CheckIntegrity().ok());
    // Final full-scan equivalence.
    BTreeCursor c = tree.NewCursor();
    ASSERT_TRUE(c.SeekToFirst().ok());
    auto it = model.begin();
    size_t scanned = 0;
    while (c.Valid()) {
      ASSERT_NE(it, model.end());
      EXPECT_EQ(c.key(), it->first);
      EXPECT_EQ(c.value().value(), it->second);
      ASSERT_TRUE(c.Next().ok());
      ++it;
      ++scanned;
    }
    EXPECT_EQ(scanned, model.size());
    pager->RollbackWrite(std::move(txn));
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreams, BTreeModelTest,
    ::testing::Values(ModelParam{1, 40, 4000},     // small inline values
                      ModelParam{2, 40, 4000},
                      ModelParam{3, 2000, 1500},   // mix inline + overflow
                      ModelParam{4, 2000, 1500},
                      ModelParam{5, 9000, 600},    // mostly overflow chains
                      ModelParam{6, 0, 2000}));    // empty values

}  // namespace
}  // namespace micronn

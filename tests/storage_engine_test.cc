// StorageEngine tests: catalog, transactions, snapshot isolation across
// tables, concurrency, crash recovery at the engine level.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "storage/engine.h"
#include "storage/key_encoding.h"

namespace micronn {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_engine_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "db";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(EngineTest, CreateTableAndReadBack) {
  auto engine = StorageEngine::Open(path_).value();
  {
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("vectors").value();
    ASSERT_TRUE(t.Put("k1", "v1").ok());
    txn->AddRowDelta("vectors", 1);
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  {
    auto txn = engine->BeginRead().value();
    BTree t = txn->OpenTable("vectors").value();
    EXPECT_EQ(*t.Get("k1").value(), "v1");
    EXPECT_EQ(txn->GetTableInfo("vectors").value().row_count, 1u);
  }
}

TEST_F(EngineTest, MissingTableIsNotFound) {
  auto engine = StorageEngine::Open(path_).value();
  auto txn = engine->BeginRead().value();
  auto t = txn->OpenTable("nope");
  EXPECT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsNotFound());
}

TEST_F(EngineTest, RollbackLeavesNoTrace) {
  auto engine = StorageEngine::Open(path_).value();
  {
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("temp").value();
    ASSERT_TRUE(t.Put("a", "b").ok());
    engine->Rollback(std::move(txn));
  }
  auto txn = engine->BeginRead().value();
  EXPECT_TRUE(txn->OpenTable("temp").status().IsNotFound());
}

TEST_F(EngineTest, MultipleTablesIndependent) {
  auto engine = StorageEngine::Open(path_).value();
  {
    auto txn = engine->BeginWrite().value();
    BTree a = txn->OpenOrCreateTable("a").value();
    BTree b = txn->OpenOrCreateTable("b").value();
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(a.Put(key::U64(i), "a" + std::to_string(i)).ok());
      ASSERT_TRUE(b.Put(key::U64(i), "b" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  auto txn = engine->BeginRead().value();
  BTree a = txn->OpenTable("a").value();
  BTree b = txn->OpenTable("b").value();
  EXPECT_EQ(*a.Get(key::U64(42)).value(), "a42");
  EXPECT_EQ(*b.Get(key::U64(42)).value(), "b42");
}

TEST_F(EngineTest, DropTableRemovesIt) {
  auto engine = StorageEngine::Open(path_).value();
  {
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("gone").value();
    ASSERT_TRUE(t.Put("x", std::string(5000, 'y')).ok());
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  {
    auto txn = engine->BeginWrite().value();
    ASSERT_TRUE(txn->DropTable("gone").ok());
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  auto txn = engine->BeginRead().value();
  EXPECT_TRUE(txn->OpenTable("gone").status().IsNotFound());
}

TEST_F(EngineTest, RowCountTracksDeltas) {
  auto engine = StorageEngine::Open(path_).value();
  {
    auto txn = engine->BeginWrite().value();
    txn->OpenOrCreateTable("t").value();
    txn->AddRowDelta("t", 10);
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  {
    auto txn = engine->BeginWrite().value();
    txn->AddRowDelta("t", -3);
    // Uncommitted delta visible inside the txn:
    EXPECT_EQ(txn->GetTableInfo("t").value().row_count, 7u);
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  auto txn = engine->BeginRead().value();
  EXPECT_EQ(txn->GetTableInfo("t").value().row_count, 7u);
}

TEST_F(EngineTest, SnapshotReadersSeeOldStateDuringWrite) {
  auto engine = StorageEngine::Open(path_).value();
  {
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("t").value();
    ASSERT_TRUE(t.Put("k", "old").ok());
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  auto reader = engine->BeginRead().value();
  {
    auto writer = engine->BeginWrite().value();
    BTree t = writer->OpenTable("t").value();
    ASSERT_TRUE(t.Put("k", "new").ok());
    // Reader opened before the write still sees the old value mid-write...
    BTree rt = reader->OpenTable("t").value();
    EXPECT_EQ(*rt.Get("k").value(), "old");
    ASSERT_TRUE(engine->Commit(std::move(writer)).ok());
  }
  // ...and after the commit (snapshot stability).
  BTree rt = reader->OpenTable("t").value();
  EXPECT_EQ(*rt.Get("k").value(), "old");
  auto fresh = engine->BeginRead().value();
  BTree ft = fresh->OpenTable("t").value();
  EXPECT_EQ(*ft.Get("k").value(), "new");
}

TEST_F(EngineTest, DataSurvivesReopen) {
  {
    auto engine = StorageEngine::Open(path_).value();
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("persist").value();
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(t.Put(key::U64(i), "value" + std::to_string(i)).ok());
    }
    txn->AddRowDelta("persist", 1000);
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  auto engine = StorageEngine::Open(path_).value();
  auto txn = engine->BeginRead().value();
  BTree t = txn->OpenTable("persist").value();
  EXPECT_EQ(*t.Get(key::U64(999)).value(), "value999");
  EXPECT_EQ(txn->GetTableInfo("persist").value().row_count, 1000u);
}

TEST_F(EngineTest, CrashRecoveryFromWal) {
  // Simulate a crash at the filesystem level: after a commit (but before
  // any checkpoint) copy the main file + WAL aside, exactly as a power cut
  // would freeze them, then recover from the copy.
  const std::string crash = dir_ / "crash_db";
  {
    auto engine = StorageEngine::Open(path_).value();
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("walled").value();
    ASSERT_TRUE(t.Put("committed", "yes").ok());
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
    // Engine still open, nothing checkpointed: the main file lacks the
    // commit; only the WAL has it.
    std::filesystem::copy_file(path_, crash);
    std::filesystem::copy_file(path_ + "-wal", crash + "-wal");
  }
  auto engine = StorageEngine::Open(crash).value();
  auto txn = engine->BeginRead().value();
  BTree t = txn->OpenTable("walled").value();
  EXPECT_EQ(*t.Get("committed").value(), "yes");
}

TEST_F(EngineTest, ConcurrentReadersWhileWriting) {
  auto engine = StorageEngine::Open(path_).value();
  {
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("t").value();
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(t.Put(key::U64(i), std::string(100, 'v')).ok());
    }
    txn->AddRowDelta("t", 2000);
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::atomic<int> reads_done{0};
  std::atomic<int> readers_warm{0};  // readers that completed >= 1 scan
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      bool first = true;
      while (!stop.load()) {
        auto txn = engine->BeginRead();
        if (!txn.ok()) {
          ++reader_errors;
          continue;
        }
        auto t = (*txn)->OpenTable("t");
        if (!t.ok()) {
          ++reader_errors;
          continue;
        }
        // Full scan must always see a consistent count (2000 + multiple of
        // 100 from committed writer batches).
        BTreeCursor c = t->NewCursor();
        if (!c.SeekToFirst().ok()) {
          ++reader_errors;
          continue;
        }
        int count = 0;
        bool bad = false;
        while (c.Valid()) {
          ++count;
          if (!c.Next().ok()) {
            bad = true;
            break;
          }
        }
        if (bad || count < 2000 || (count - 2000) % 100 != 0) {
          ++reader_errors;
        }
        ++reads_done;
        if (first) {
          first = false;
          ++readers_warm;
        }
      }
    });
  }
  // Wait until every reader is demonstrably scanning before the first
  // commit: on a loaded (or single-core) machine the writer can otherwise
  // finish all batches before the reader threads are even scheduled, which
  // would vacuously satisfy the progress assertion below.
  while (readers_warm.load() < 3) {
    std::this_thread::yield();
  }
  // Writer: 10 batches of 100 inserts each.
  for (int batch = 0; batch < 10; ++batch) {
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenTable("t").value();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          t.Put(key::U64(10000 + batch * 100 + i), "new").ok());
    }
    txn->AddRowDelta("t", 100);
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_GT(reads_done.load(), 0);
}

TEST_F(EngineTest, SingleWriterEnforced) {
  auto engine = StorageEngine::Open(path_).value();
  auto w1 = engine->BeginWrite().value();
  auto w2 = engine->TryBeginWrite();
  EXPECT_TRUE(w2.status().IsBusy());
  engine->Rollback(std::move(w1));
  auto w3 = engine->TryBeginWrite();
  EXPECT_TRUE(w3.ok());
  engine->Rollback(std::move(*w3));
}

TEST_F(EngineTest, LargeValuesThroughEngine) {
  auto engine = StorageEngine::Open(path_).value();
  const std::string blob(3840, 'f');  // a 960-dim float vector's size
  {
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("vec").value();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(t.Put(key::U64(i), blob).ok());
    }
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  auto txn = engine->BeginRead().value();
  BTree t = txn->OpenTable("vec").value();
  EXPECT_EQ(t.Get(key::U64(123)).value()->size(), blob.size());
}

TEST_F(EngineTest, CheckpointThenReopenWithoutWal) {
  {
    auto engine = StorageEngine::Open(path_).value();
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("t").value();
    ASSERT_TRUE(t.Put("k", "v").ok());
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
    ASSERT_TRUE(engine->Checkpoint().ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  // Delete the (empty) WAL to prove the main file is self-contained.
  ASSERT_TRUE(RemoveFileIfExists(path_ + "-wal").ok());
  auto engine = StorageEngine::Open(path_).value();
  auto txn = engine->BeginRead().value();
  BTree t = txn->OpenTable("t").value();
  EXPECT_EQ(*t.Get("k").value(), "v");
}

TEST_F(EngineTest, CacheShardOverridePlumbsThroughPagerOptions) {
  PagerOptions options;
  options.cache_shards = 2;
  auto engine = StorageEngine::Open(path_, options).value();
  EXPECT_EQ(engine->pager()->cache_shard_count(), 2u);
  {
    auto txn = engine->BeginWrite().value();
    BTree t = txn->OpenOrCreateTable("t").value();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(t.Put(key::U64(i), std::string(100, 'x')).ok());
    }
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  const IoStats::View before = engine->io_stats().Snapshot();
  {
    auto txn = engine->BeginRead().value();
    BTree t = txn->OpenTable("t").value();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(t.Get(key::U64(i)).value().has_value());
    }
  }
  const IoStats::View delta = engine->io_stats().Snapshot() - before;
  // Warm reads hit the cache; the per-shard counters must account for
  // exactly the aggregate hit counter and stay within the pinned shards.
  uint64_t shard_hits = 0;
  for (const uint64_t h : delta.cache_shard_hits) shard_hits += h;
  EXPECT_GT(delta.pages_cache_hit, 0u);
  EXPECT_EQ(shard_hits, delta.pages_cache_hit);
  for (size_t s = 2; s < kMaxCacheShards; ++s) {
    EXPECT_EQ(delta.cache_shard_hits[s], 0u);
    EXPECT_EQ(delta.cache_shard_misses[s], 0u);
  }
}

}  // namespace
}  // namespace micronn

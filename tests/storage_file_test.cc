// Tests for the low-level storage pieces: File, PageCache, Wal, Pager,
// key encoding.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/rng.h"
#include "storage/file.h"
#include "storage/key_encoding.h"
#include "storage/page_cache.h"
#include "storage/pager.h"
#include "storage/wal.h"

namespace micronn {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return dir_ / name; }
  std::filesystem::path dir_;
};

using FileTest = TempDir;

TEST_F(FileTest, WriteReadRoundTrip) {
  auto file = File::Open(Path("f")).value();
  ASSERT_TRUE(file->WriteAt(0, "hello", 5).ok());
  ASSERT_TRUE(file->WriteAt(100, "world", 5).ok());
  char buf[5];
  ASSERT_TRUE(file->ReadAt(100, buf, 5).ok());
  EXPECT_EQ(std::string(buf, 5), "world");
  EXPECT_EQ(file->size(), 105u);
}

TEST_F(FileTest, AppendGrowsFile) {
  auto file = File::Open(Path("f")).value();
  ASSERT_TRUE(file->Append("abc", 3).ok());
  ASSERT_TRUE(file->Append("def", 3).ok());
  char buf[6];
  ASSERT_TRUE(file->ReadAt(0, buf, 6).ok());
  EXPECT_EQ(std::string(buf, 6), "abcdef");
}

TEST_F(FileTest, ShortReadFails) {
  auto file = File::Open(Path("f")).value();
  ASSERT_TRUE(file->WriteAt(0, "abc", 3).ok());
  char buf[10];
  EXPECT_FALSE(file->ReadAt(0, buf, 10).ok());
}

TEST_F(FileTest, TruncateShrinks) {
  auto file = File::Open(Path("f")).value();
  ASSERT_TRUE(file->WriteAt(0, "abcdef", 6).ok());
  ASSERT_TRUE(file->Truncate(3).ok());
  EXPECT_EQ(file->size(), 3u);
  char buf[3];
  ASSERT_TRUE(file->ReadAt(0, buf, 3).ok());
}

TEST_F(FileTest, SizeSurvivesReopen) {
  {
    auto file = File::Open(Path("f")).value();
    ASSERT_TRUE(file->WriteAt(0, "abcdef", 6).ok());
  }
  auto file = File::Open(Path("f")).value();
  EXPECT_EQ(file->size(), 6u);
}

TEST(KeyEncodingTest, U32Order) {
  EXPECT_LT(key::U32(1), key::U32(2));
  EXPECT_LT(key::U32(255), key::U32(256));
  EXPECT_LT(key::U32(0), key::U32(0xffffffff));
}

TEST(KeyEncodingTest, U64RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 0x123456789abcdefull, ~0ull}) {
    std::string s = key::U64(v);
    std::string_view sv = s;
    uint64_t out;
    ASSERT_TRUE(key::ConsumeU64(&sv, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(sv.empty());
  }
}

TEST(KeyEncodingTest, I64Order) {
  auto enc = [](int64_t v) {
    std::string s;
    key::AppendI64(&s, v);
    return s;
  };
  EXPECT_LT(enc(-5), enc(-1));
  EXPECT_LT(enc(-1), enc(0));
  EXPECT_LT(enc(0), enc(1));
  EXPECT_LT(enc(1), enc(INT64_MAX));
  EXPECT_LT(enc(INT64_MIN), enc(-1000000));
}

TEST(KeyEncodingTest, I64RoundTrip) {
  for (int64_t v : {INT64_MIN, int64_t{-7}, int64_t{0}, int64_t{42},
                    INT64_MAX}) {
    std::string s;
    key::AppendI64(&s, v);
    std::string_view sv = s;
    int64_t out;
    ASSERT_TRUE(key::ConsumeI64(&sv, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(KeyEncodingTest, F64Order) {
  auto enc = [](double v) {
    std::string s;
    key::AppendF64(&s, v);
    return s;
  };
  EXPECT_LT(enc(-1e30), enc(-1.0));
  EXPECT_LT(enc(-1.0), enc(-0.5));
  EXPECT_LT(enc(-0.5), enc(0.0));
  EXPECT_LT(enc(0.0), enc(0.5));
  EXPECT_LT(enc(0.5), enc(1e30));
}

TEST(KeyEncodingTest, F64RoundTrip) {
  for (double v : {-1e300, -1.5, 0.0, 2.25, 1e300}) {
    std::string s;
    key::AppendF64(&s, v);
    std::string_view sv = s;
    double out;
    ASSERT_TRUE(key::ConsumeF64(&sv, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(KeyEncodingTest, StringEscapingAndOrder) {
  EXPECT_LT(key::Str("a"), key::Str("b"));
  EXPECT_LT(key::Str("a"), key::Str("aa"));
  EXPECT_LT(key::Str(""), key::Str("a"));
  // Embedded NULs preserve order and round-trip.
  const std::string with_nul = std::string("a\0b", 3);
  EXPECT_LT(key::Str("a"), key::Str(with_nul));
  std::string encoded = key::Str(with_nul);
  std::string_view sv = encoded;
  std::string out;
  ASSERT_TRUE(key::ConsumeString(&sv, &out));
  EXPECT_EQ(out, with_nul);
  EXPECT_TRUE(sv.empty());
}

TEST(KeyEncodingTest, TupleOrderMatchesComponentOrder) {
  auto enc = [](uint32_t part, uint64_t vid) {
    std::string s;
    key::AppendU32(&s, part);
    key::AppendU64(&s, vid);
    return s;
  };
  EXPECT_LT(enc(1, 999), enc(2, 0));
  EXPECT_LT(enc(1, 5), enc(1, 6));
}

TEST(PageCacheTest, HitAndMiss) {
  PageCache cache(10 * (kPageSize + 64));
  EXPECT_EQ(cache.Get(3, 0), nullptr);
  auto page = std::make_shared<Page>();
  page->WriteU32(0, 42);
  cache.Put(3, 0, page);
  auto hit = cache.Get(3, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->ReadU32(0), 42u);
  EXPECT_EQ(cache.Get(3, 1), nullptr);  // different version
}

TEST(PageCacheTest, EvictsLruUnderBudget) {
  PageCache cache(3 * (kPageSize + 64));
  for (PageId p = 1; p <= 5; ++p) {
    cache.Put(p, 0, std::make_shared<Page>());
  }
  EXPECT_EQ(cache.entry_count(), 3u);
  EXPECT_EQ(cache.Get(1, 0), nullptr);  // oldest evicted
  EXPECT_NE(cache.Get(5, 0), nullptr);
}

TEST(PageCacheTest, GetRefreshesRecency) {
  PageCache cache(2 * (kPageSize + 64));
  cache.Put(1, 0, std::make_shared<Page>());
  cache.Put(2, 0, std::make_shared<Page>());
  cache.Get(1, 0);                             // 1 is now MRU
  cache.Put(3, 0, std::make_shared<Page>());   // evicts 2
  EXPECT_NE(cache.Get(1, 0), nullptr);
  EXPECT_EQ(cache.Get(2, 0), nullptr);
}

TEST(PageCacheTest, ZeroBudgetPassesThrough) {
  PageCache cache(0);
  auto page = std::make_shared<Page>();
  EXPECT_NE(cache.Put(1, 0, page), nullptr);
  EXPECT_EQ(cache.Get(1, 0), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(PageCacheTest, ShrinkingBudgetBelowShardGranularityKeepsCacheAlive) {
  // A production-sized budget picks multiple shards; shrinking the budget
  // to a few pages afterwards must leave a small working cache (each shard
  // floors at one page), not evict every insert immediately.
  PageCache cache(8ull << 20);
  ASSERT_GT(cache.shard_count(), 1u);
  cache.set_budget_bytes(3 * PageCache::kEntryBytes);
  for (PageId p = 1; p <= 3; ++p) {
    cache.Put(p, 0, std::make_shared<Page>());
  }
  EXPECT_NE(cache.Get(3, 0), nullptr);  // the newest insert always survives
  EXPECT_GE(cache.entry_count(), 1u);
  EXPECT_LE(cache.entry_count(), cache.shard_count());
}

TEST(PageCacheTest, ShardOverridePinsTheCount) {
  // Auto-pick scales with the budget...
  EXPECT_EQ(PageCache(3 * PageCache::kEntryBytes).shard_count(), 1u);
  EXPECT_GT(PageCache(64ull << 20).shard_count(), 1u);
  // ...while an explicit override pins it: rounded down to a power of
  // two, clamped to kMaxShards, independent of the budget.
  EXPECT_EQ(PageCache(64ull << 20, 1).shard_count(), 1u);
  EXPECT_EQ(PageCache(3 * PageCache::kEntryBytes, 8).shard_count(), 8u);
  EXPECT_EQ(PageCache(8ull << 20, 7).shard_count(), 4u);
  EXPECT_EQ(PageCache(8ull << 20, 1000).shard_count(),
            PageCache::kMaxShards);
}

TEST(PageCacheTest, PerShardHitMissCountersFeedIoStats) {
  IoStats stats;
  PageCache cache(64 * PageCache::kEntryBytes, 4);
  cache.set_io_stats(&stats);
  for (PageId p = 1; p <= 16; ++p) {
    cache.Put(p, 0, std::make_shared<Page>());
  }
  for (PageId p = 1; p <= 16; ++p) {
    EXPECT_NE(cache.Get(p, 0), nullptr);
  }
  for (PageId p = 100; p < 108; ++p) {
    EXPECT_EQ(cache.Get(p, 0), nullptr);
  }
  const IoStats::View v = stats.Snapshot();
  uint64_t hits = 0;
  for (const uint64_t h : v.cache_shard_hits) hits += h;
  EXPECT_EQ(hits, 16u);
  EXPECT_EQ(v.pages_cache_hit, 16u);  // aggregate mirrors the shard sum
  EXPECT_EQ(v.CacheMisses(), 8u);
  // Only the first shard_count() slots may move.
  for (size_t s = cache.shard_count(); s < kMaxCacheShards; ++s) {
    EXPECT_EQ(v.cache_shard_hits[s], 0u);
    EXPECT_EQ(v.cache_shard_misses[s], 0u);
  }
  // The hash spread should reach more than one of the 4 shards even with
  // 16 sequential page ids.
  size_t touched = 0;
  for (size_t s = 0; s < cache.shard_count(); ++s) {
    if (v.cache_shard_hits[s] > 0) ++touched;
  }
  EXPECT_GT(touched, 1u);
}

TEST(PageCacheTest, DropVersionedKeepsMainFilePages) {
  PageCache cache(10 * (kPageSize + 64));
  cache.Put(1, 0, std::make_shared<Page>());
  cache.Put(1, 7, std::make_shared<Page>());
  cache.Put(2, 3, std::make_shared<Page>());
  cache.DropVersioned();
  EXPECT_NE(cache.Get(1, 0), nullptr);
  EXPECT_EQ(cache.Get(1, 7), nullptr);
  EXPECT_EQ(cache.Get(2, 3), nullptr);
}

using WalTest = TempDir;

TEST_F(WalTest, AppendAndLookup) {
  IoStats stats;
  auto wal = Wal::Open(Path("wal"), &stats).value();
  Page p1, p2;
  p1.Zero();
  p2.Zero();
  p1.WriteU32(0, 111);
  p2.WriteU32(0, 222);
  ASSERT_TRUE(wal->AppendCommit({{5, &p1}, {9, &p2}}, 1, false).ok());
  EXPECT_EQ(wal->frame_count(), 2u);
  EXPECT_EQ(wal->last_committed_seq(), 1u);
  ASSERT_TRUE(wal->FindFrame(5, 1).has_value());
  EXPECT_FALSE(wal->FindFrame(5, 0).has_value());  // before the commit
  Page out;
  ASSERT_TRUE(wal->ReadFrame(*wal->FindFrame(9, 1), &out).ok());
  EXPECT_EQ(out.ReadU32(0), 222u);
}

TEST_F(WalTest, SnapshotSeesOnlyItsVersion) {
  IoStats stats;
  auto wal = Wal::Open(Path("wal"), &stats).value();
  Page v1, v2;
  v1.Zero();
  v2.Zero();
  v1.WriteU32(0, 1);
  v2.WriteU32(0, 2);
  ASSERT_TRUE(wal->AppendCommit({{5, &v1}}, 1, false).ok());
  ASSERT_TRUE(wal->AppendCommit({{5, &v2}}, 2, false).ok());
  Page out;
  ASSERT_TRUE(wal->ReadFrame(*wal->FindFrame(5, 1), &out).ok());
  EXPECT_EQ(out.ReadU32(0), 1u);
  ASSERT_TRUE(wal->ReadFrame(*wal->FindFrame(5, 2), &out).ok());
  EXPECT_EQ(out.ReadU32(0), 2u);
}

TEST_F(WalTest, RecoverySurvivesReopen) {
  IoStats stats;
  {
    auto wal = Wal::Open(Path("wal"), &stats).value();
    Page p;
    p.Zero();
    p.WriteU32(0, 7);
    ASSERT_TRUE(wal->AppendCommit({{3, &p}}, 1, true).ok());
  }
  auto wal = Wal::Open(Path("wal"), &stats).value();
  EXPECT_EQ(wal->frame_count(), 1u);
  EXPECT_EQ(wal->last_committed_seq(), 1u);
  Page out;
  ASSERT_TRUE(wal->ReadFrame(*wal->FindFrame(3, 1), &out).ok());
  EXPECT_EQ(out.ReadU32(0), 7u);
}

TEST_F(WalTest, TornTailDiscarded) {
  IoStats stats;
  {
    auto wal = Wal::Open(Path("wal"), &stats).value();
    Page p;
    p.Zero();
    ASSERT_TRUE(wal->AppendCommit({{3, &p}}, 1, true).ok());
    ASSERT_TRUE(wal->AppendCommit({{4, &p}, {5, &p}}, 2, true).ok());
  }
  // Corrupt the tail: truncate into the middle of the last commit.
  {
    auto file = File::Open(Path("wal")).value();
    ASSERT_TRUE(file->Truncate(file->size() - Wal::kFrameSize - 10).ok());
  }
  auto wal = Wal::Open(Path("wal"), &stats).value();
  EXPECT_EQ(wal->last_committed_seq(), 1u);
  EXPECT_EQ(wal->frame_count(), 1u);
  EXPECT_FALSE(wal->FindFrame(4, 2).has_value());
}

TEST_F(WalTest, CorruptChecksumStopsRecovery) {
  IoStats stats;
  {
    auto wal = Wal::Open(Path("wal"), &stats).value();
    Page p;
    p.Zero();
    ASSERT_TRUE(wal->AppendCommit({{3, &p}}, 1, true).ok());
    ASSERT_TRUE(wal->AppendCommit({{4, &p}}, 2, true).ok());
  }
  {
    auto file = File::Open(Path("wal")).value();
    // Flip a byte inside the second frame's page image.
    const uint64_t off =
        Wal::kHeaderSize + Wal::kFrameSize + Wal::kFrameHeaderSize + 100;
    char b = 'x';
    ASSERT_TRUE(file->WriteAt(off, &b, 1).ok());
  }
  auto wal = Wal::Open(Path("wal"), &stats).value();
  EXPECT_EQ(wal->last_committed_seq(), 1u);
}

using PagerTest = TempDir;

TEST_F(PagerTest, FreshDatabaseInitializes) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  EXPECT_EQ(pager->page_count(), 1u);
  const uint64_t seq = pager->BeginSnapshot();
  auto header = pager->ReadPage(0, seq).value();
  EXPECT_EQ(header->ReadU64(DbHeader::kOffMagic), DbHeader::kMagic);
  pager->EndSnapshot(seq);
}

TEST_F(PagerTest, WriteCommitReadBack) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  auto txn = pager->BeginWrite().value();
  const PageId pid = pager->AllocatePage(txn.get()).value();
  Page* p = pager->GetMutablePage(txn.get(), pid).value();
  p->WriteU32(100, 0xabcd);
  ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  const uint64_t seq = pager->BeginSnapshot();
  auto rp = pager->ReadPage(pid, seq).value();
  EXPECT_EQ(rp->ReadU32(100), 0xabcdu);
  pager->EndSnapshot(seq);
}

TEST_F(PagerTest, SnapshotIsolation) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  PageId pid;
  {
    auto txn = pager->BeginWrite().value();
    pid = pager->AllocatePage(txn.get()).value();
    pager->GetMutablePage(txn.get(), pid).value()->WriteU32(0, 1);
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  const uint64_t old_snap = pager->BeginSnapshot();
  {
    auto txn = pager->BeginWrite().value();
    pager->GetMutablePage(txn.get(), pid).value()->WriteU32(0, 2);
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  // The old snapshot still sees version 1; a fresh snapshot sees 2.
  EXPECT_EQ(pager->ReadPage(pid, old_snap).value()->ReadU32(0), 1u);
  const uint64_t new_snap = pager->BeginSnapshot();
  EXPECT_EQ(pager->ReadPage(pid, new_snap).value()->ReadU32(0), 2u);
  pager->EndSnapshot(old_snap);
  pager->EndSnapshot(new_snap);
}

TEST_F(PagerTest, RollbackDiscardsChanges) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  PageId pid;
  {
    auto txn = pager->BeginWrite().value();
    pid = pager->AllocatePage(txn.get()).value();
    pager->GetMutablePage(txn.get(), pid).value()->WriteU32(0, 1);
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  {
    auto txn = pager->BeginWrite().value();
    pager->GetMutablePage(txn.get(), pid).value()->WriteU32(0, 99);
    pager->RollbackWrite(std::move(txn));
  }
  const uint64_t seq = pager->BeginSnapshot();
  EXPECT_EQ(pager->ReadPage(pid, seq).value()->ReadU32(0), 1u);
  pager->EndSnapshot(seq);
}

TEST_F(PagerTest, TryBeginWriteReportsBusy) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  auto txn = pager->BeginWrite().value();
  auto second = pager->TryBeginWrite();
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsBusy());
  pager->RollbackWrite(std::move(txn));
  EXPECT_TRUE(pager->TryBeginWrite().ok() || true);
}

TEST_F(PagerTest, FreelistReusesPages) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  PageId first;
  {
    auto txn = pager->BeginWrite().value();
    first = pager->AllocatePage(txn.get()).value();
    ASSERT_TRUE(pager->FreePage(txn.get(), first).ok());
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  {
    auto txn = pager->BeginWrite().value();
    const PageId reused = pager->AllocatePage(txn.get()).value();
    EXPECT_EQ(reused, first);
    pager->RollbackWrite(std::move(txn));
  }
}

TEST_F(PagerTest, PersistsAcrossReopenWithoutCheckpoint) {
  PageId pid;
  {
    auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
    auto txn = pager->BeginWrite().value();
    pid = pager->AllocatePage(txn.get()).value();
    pager->GetMutablePage(txn.get(), pid).value()->WriteU32(8, 1234);
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
    // Simulate crash: drop the pager without Close() (no checkpoint). The
    // destructor checkpoints best-effort, so instead reopen the WAL file
    // path directly below.
    auto seq = pager->BeginSnapshot();  // hold a reader to block checkpoint
    ASSERT_TRUE(pager->Close().ok());
    pager->EndSnapshot(seq);
  }
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  const uint64_t seq = pager->BeginSnapshot();
  EXPECT_EQ(pager->ReadPage(pid, seq).value()->ReadU32(8), 1234u);
  pager->EndSnapshot(seq);
}

TEST_F(PagerTest, CheckpointFoldsWalIntoMainFile) {
  PageId pid;
  {
    auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
    auto txn = pager->BeginWrite().value();
    pid = pager->AllocatePage(txn.get()).value();
    pager->GetMutablePage(txn.get(), pid).value()->WriteU32(8, 77);
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
    ASSERT_TRUE(pager->Close().ok());
  }
  // After a full checkpoint the WAL holds no frames — only its file
  // header (with the backfill watermark reset to zero) remains.
  auto wal_file = File::Open(Path("db") + "-wal").value();
  EXPECT_EQ(wal_file->size(), Wal::kHeaderSize);
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  const uint64_t seq = pager->BeginSnapshot();
  EXPECT_EQ(pager->ReadPage(pid, seq).value()->ReadU32(8), 77u);
  pager->EndSnapshot(seq);
}

TEST_F(PagerTest, CheckpointBackfillsUnderActiveReader) {
  // Wrap-around off: the classic contract — a live reader limits a full
  // fold to "folded, not reset".
  PagerOptions opts;
  opts.wal_wraparound = false;
  auto pager = Pager::Open(Path("db"), opts).value();
  {
    auto txn = pager->BeginWrite().value();
    pager->AllocatePage(txn.get()).value();
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  // A live reader no longer makes the checkpoint Busy: frames at-or-below
  // the reader's snapshot are folded and the watermark advances, but the
  // WAL is not reset while the reader could still touch a frame.
  const uint64_t seq = pager->BeginSnapshot();
  const uint64_t frames = pager->wal_frame_count();
  ASSERT_GT(frames, 0u);
  EXPECT_TRUE(pager->Checkpoint().ok());
  EXPECT_EQ(pager->wal_backfill_watermark(), frames);
  EXPECT_EQ(pager->wal_frame_count(), frames);  // folded, not reset
  pager->EndSnapshot(seq);
  // With the registry drained the next checkpoint recycles the log.
  EXPECT_TRUE(pager->Checkpoint().ok());
  EXPECT_EQ(pager->wal_frame_count(), 0u);
  EXPECT_EQ(pager->wal_backfill_watermark(), 0u);
}

TEST_F(PagerTest, CheckpointWrapsUnderActiveReader) {
  // Wrap-around on (the default): once the fold is complete, a live
  // reader no longer pins the log — a new frame generation begins at
  // slot 1 and the reader keeps reading through the folded main file.
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  PageId pid;
  {
    auto txn = pager->BeginWrite().value();
    pid = pager->AllocatePage(txn.get()).value();
    pager->GetMutablePage(txn.get(), pid).value()->WriteU32(8, 4242);
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  const uint64_t seq = pager->BeginSnapshot();
  ASSERT_GT(pager->wal_frame_count(), 0u);
  EXPECT_TRUE(pager->Checkpoint().ok());
  EXPECT_EQ(pager->wal_frame_count(), 0u);
  EXPECT_EQ(pager->wal_backfill_watermark(), 0u);
  EXPECT_EQ(pager->wal_epoch(), 1u);
  EXPECT_EQ(pager->ReadPage(pid, seq).value()->ReadU32(8), 4242u);
  pager->EndSnapshot(seq);
  // Commits after the wrap reuse the reclaimed slots (same file region).
  {
    auto txn = pager->BeginWrite().value();
    pager->GetMutablePage(txn.get(), pid).value()->WriteU32(8, 4343);
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  const uint64_t seq2 = pager->BeginSnapshot();
  EXPECT_EQ(pager->ReadPage(pid, seq2).value()->ReadU32(8), 4343u);
  pager->EndSnapshot(seq2);
}

TEST_F(PagerTest, ColdStartAfterDropCachesStillReads) {
  auto pager = Pager::Open(Path("db"), PagerOptions{}).value();
  PageId pid;
  {
    auto txn = pager->BeginWrite().value();
    pid = pager->AllocatePage(txn.get()).value();
    pager->GetMutablePage(txn.get(), pid).value()->WriteU32(0, 5);
    ASSERT_TRUE(pager->CommitWrite(std::move(txn)).ok());
  }
  pager->DropCaches();
  const uint64_t seq = pager->BeginSnapshot();
  EXPECT_EQ(pager->ReadPage(pid, seq).value()->ReadU32(0), 5u);
  pager->EndSnapshot(seq);
}

}  // namespace
}  // namespace micronn

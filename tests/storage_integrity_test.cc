// End-to-end page integrity: checksummed page format v4, corruption
// detection on every read path, Scrub (verify / backfill / repair from
// WAL / format upgrade), the legacy v3 lazy-upgrade path, the transient
// vs permanent I/O error taxonomy, and the demand-read join of in-flight
// async prefetches. Complements storage_file_test (file-layer units) and
// corruption_sweep_test (randomized DB-level sweep).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/engine.h"
#include "storage/key_encoding.h"
#include "support/fault_injection_file.h"

namespace micronn {
namespace {

class StorageIntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_integrity_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "db";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Commits `rows` rows into table "t" (keys U64(start..start+rows)).
  static Status CommitRows(StorageEngine* engine, uint64_t start,
                           uint64_t rows) {
    MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<WriteTransaction> txn,
                             engine->BeginWrite());
    Result<BTree> t = txn->OpenOrCreateTable("t");
    if (!t.ok()) {
      engine->Rollback(std::move(txn));
      return t.status();
    }
    for (uint64_t i = start; i < start + rows; ++i) {
      Status st = t->Put(key::U64(i), "row-" + std::to_string(i) +
                                          std::string(100, 'x'));
      if (!st.ok()) {
        engine->Rollback(std::move(txn));
        return st;
      }
    }
    txn->AddRowDelta("t", static_cast<int64_t>(rows));
    return engine->Commit(std::move(txn));
  }

  // Full scan of "t"; returns rows seen or the error.
  static Result<uint64_t> ScanAll(StorageEngine* engine) {
    MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<ReadTransaction> txn,
                             engine->BeginRead());
    MICRONN_ASSIGN_OR_RETURN(BTree t, txn->OpenTable("t"));
    BTreeCursor c = t.NewCursor();
    MICRONN_RETURN_IF_ERROR(c.SeekToFirst());
    uint64_t n = 0;
    while (c.Valid()) {
      MICRONN_ASSIGN_OR_RETURN(std::string v, c.value());
      if (v.find("row-") != 0) {
        return Status::Corruption("unexpected row payload");
      }
      ++n;
      MICRONN_RETURN_IF_ERROR(c.Next());
    }
    return n;
  }

  // Flips one byte of the file at `path` (offset from the file start).
  static void FlipByte(const std::string& path, uint64_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
    ASSERT_TRUE(f.good());
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(StorageIntegrityTest, FreshDbIsFormatV4WithChecksums) {
  auto engine = StorageEngine::Open(path_).value();
  ASSERT_TRUE(CommitRows(engine.get(), 0, 200).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_GE(engine->pager()->format_version(), 4u);
  // The checkpoint fold wrote a checksum slot for every folded page.
  EXPECT_GT(engine->pager()->checksum_slot_count(), 1u);
  EXPECT_EQ(ScanAll(engine.get()).value(), 200u);
  ASSERT_TRUE(engine->Close().ok());

  // Reopen: verification on, every read checks out.
  engine = StorageEngine::Open(path_).value();
  EXPECT_EQ(ScanAll(engine.get()).value(), 200u);
  EXPECT_EQ(engine->io_stats().Snapshot().corruptions_detected, 0u);
}

TEST_F(StorageIntegrityTest, OnDiskBitFlipSurfacesAsCorruption) {
  {
    auto engine = StorageEngine::Open(path_).value();
    ASSERT_TRUE(CommitRows(engine.get(), 0, 500).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  // Flip one byte in the middle of a data page (not page 0).
  const uint64_t file_size = std::filesystem::file_size(path_);
  ASSERT_GT(file_size, 3 * kPageSize);
  FlipByte(path_, 2 * kPageSize + 1234);

  auto engine = StorageEngine::Open(path_).value();
  Result<uint64_t> scan = ScanAll(engine.get());
  // The flipped page is on the scan's path: the read must fail with
  // Corruption — never serve the flipped image as row content.
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
  EXPECT_GE(engine->io_stats().Snapshot().corruptions_detected, 1u);
}

TEST_F(StorageIntegrityTest, ScrubRepairsCorruptPageFromWal) {
  auto engine = StorageEngine::Open(path_).value();
  ASSERT_TRUE(CommitRows(engine.get(), 0, 500).ok());
  // The repair window: frames folded into the main file by a *partial*
  // checkpoint stay physically in the WAL (and indexed) because newer
  // frames above the reader horizon keep the log from resetting. Pin the
  // horizon between two commits — the second touches only another table,
  // so table t's pages fold below the watermark and stay repairable.
  Pager* pager = engine->pager();
  const uint64_t snap = pager->BeginSnapshot();
  {
    auto txn = engine->BeginWrite().value();
    BTree t2 = txn->OpenOrCreateTable("t2").value();
    ASSERT_TRUE(t2.Put(key::U64(1), "other-table").ok());
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }
  ASSERT_TRUE(engine->Checkpoint().ok());
  ASSERT_GT(pager->wal_frame_count(), 0u);
  ASSERT_GT(pager->wal_backfill_watermark(), 0u);

  // Corrupt a folded page in the main file behind the pager's back, then
  // drop the cache so the next read goes to disk.
  FlipByte(path_, 2 * kPageSize + 99);
  engine->DropCaches();

  ScrubReport report;
  ASSERT_TRUE(pager->Scrub(&report).ok());
  pager->EndSnapshot(snap);
  EXPECT_GE(report.corruptions_found, 1u);
  EXPECT_GE(report.pages_repaired, 1u);
  EXPECT_TRUE(report.unrepairable.empty());

  // Repaired: the full scan succeeds again.
  engine->DropCaches();
  EXPECT_EQ(ScanAll(engine.get()).value(), 500u);
}

TEST_F(StorageIntegrityTest, ScrubReportsUnrepairablePages) {
  {
    auto engine = StorageEngine::Open(path_).value();
    ASSERT_TRUE(CommitRows(engine.get(), 0, 500).ok());
    ASSERT_TRUE(engine->Close().ok());  // full fold + WAL reset
  }
  FlipByte(path_, 3 * kPageSize + 7);

  auto engine = StorageEngine::Open(path_).value();
  ScrubReport report;
  ASSERT_TRUE(engine->pager()->Scrub(&report).ok());
  EXPECT_GE(report.corruptions_found, 1u);
  EXPECT_EQ(report.pages_repaired, 0u);  // no WAL frame holds the content
  ASSERT_FALSE(report.unrepairable.empty());
  EXPECT_EQ(report.unrepairable[0], PageId{3});
  // Not masked: reading the lost page still fails loudly.
  Result<uint64_t> scan = ScanAll(engine.get());
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsCorruption());
}

TEST_F(StorageIntegrityTest, LegacyV3DatabaseLazilyUpgrades) {
  {
    auto engine = StorageEngine::Open(path_).value();
    ASSERT_TRUE(CommitRows(engine.get(), 0, 300).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  // Rewind the on-disk header to format v3 and drop the sidecar — the
  // state a database written by a pre-checksum build is in.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(DbHeader::kOffVersion);
    const char v3[4] = {3, 0, 0, 0};
    f.write(v3, 4);
    ASSERT_TRUE(f.good());
  }
  std::filesystem::remove(path_ + "-sum");

  // Legacy DBs open normally and keep serving; verification is lenient
  // (absent slots tolerated) until a scrub proves full coverage.
  auto engine = StorageEngine::Open(path_).value();
  Pager* pager = engine->pager();
  EXPECT_EQ(pager->format_version(), 3u);
  EXPECT_EQ(ScanAll(engine.get()).value(), 300u);

  // Writes accumulate slots lazily through checkpoint folds.
  ASSERT_TRUE(CommitRows(engine.get(), 300, 100).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_GT(pager->checksum_slot_count(), 0u);

  // Scrub backfills the rest and flips the header to v4.
  ScrubReport report;
  ASSERT_TRUE(pager->Scrub(&report).ok());
  EXPECT_EQ(report.corruptions_found, 0u);
  EXPECT_TRUE(report.upgraded_format);
  EXPECT_GE(pager->format_version(), 4u);
  EXPECT_EQ(ScanAll(engine.get()).value(), 400u);
  ASSERT_TRUE(engine->Close().ok());

  // The upgrade is persistent, and verification is strict from here on.
  engine = StorageEngine::Open(path_).value();
  EXPECT_GE(engine->pager()->format_version(), 4u);
  EXPECT_EQ(ScanAll(engine.get()).value(), 400u);
}

TEST_F(StorageIntegrityTest, DeletedSidecarOfV4DbDegradesToLenient) {
  {
    auto engine = StorageEngine::Open(path_).value();
    ASSERT_TRUE(CommitRows(engine.get(), 0, 200).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  std::filesystem::remove(path_ + "-sum");
  // A v4 header with no sidecar must not reject every page — strictness
  // demotes with a warning, data keeps serving, and a scrub restores it.
  auto engine = StorageEngine::Open(path_).value();
  EXPECT_EQ(ScanAll(engine.get()).value(), 200u);
  ScrubReport report;
  ASSERT_TRUE(engine->pager()->Scrub(&report).ok());
  EXPECT_GT(report.slots_backfilled, 0u);
  EXPECT_EQ(ScanAll(engine.get()).value(), 200u);
}

TEST_F(StorageIntegrityTest, TransientReadFaultsAreRetried) {
  {
    auto engine = StorageEngine::Open(path_).value();
    ASSERT_TRUE(CommitRows(engine.get(), 0, 100).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  // The first read of the reopen (the header) fails twice with
  // Unavailable, then succeeds: the retry layer must absorb it within
  // its budget (default 3) and count the absorbed attempts.
  PagerOptions options;
  options.file_wrapper = [](std::unique_ptr<FileHandle> base,
                            std::string_view role) {
    if (role != "db") return base;
    FaultSchedule s;
    s.transient_read_at = 1;
    s.transient_read_failures = 2;
    return std::unique_ptr<FileHandle>(
        new FaultInjectionFile(std::move(base), s));
  };
  auto engine = StorageEngine::Open(path_, options).value();
  EXPECT_EQ(ScanAll(engine.get()).value(), 100u);
  EXPECT_GE(engine->io_stats().Snapshot().io_retries, 2u);
}

TEST_F(StorageIntegrityTest, StickyEioIsNotRetried) {
  {
    auto engine = StorageEngine::Open(path_).value();
    ASSERT_TRUE(CommitRows(engine.get(), 0, 100).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  // Dying media: every read returns EIO. Permanent per the taxonomy —
  // the open must fail fast (no retry storm) with an I/O error.
  PagerOptions options;
  options.file_wrapper = [](std::unique_ptr<FileHandle> base,
                            std::string_view role) {
    if (role != "db") return base;
    FaultSchedule s;
    s.sticky_eio_read_at = 1;
    return std::unique_ptr<FileHandle>(
        new FaultInjectionFile(std::move(base), s));
  };
  Result<std::unique_ptr<StorageEngine>> engine =
      StorageEngine::Open(path_, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsIOError()) << engine.status().ToString();
}

TEST_F(StorageIntegrityTest, InjectedReadCorruptionIsCaught) {
  {
    auto engine = StorageEngine::Open(path_).value();
    ASSERT_TRUE(CommitRows(engine.get(), 0, 500).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  // Bit-flip in flight (between platter and page cache) on a later read:
  // the checksum must catch what the disk's own ECC did not.
  PagerOptions options;
  options.cache_bytes = 0;  // every read hits the file
  options.file_wrapper = [](std::unique_ptr<FileHandle> base,
                            std::string_view role) {
    if (role != "db") return base;
    FaultSchedule s;
    s.corrupt_read_at = 10;
    s.corrupt_read_byte = 2000;
    return std::unique_ptr<FileHandle>(
        new FaultInjectionFile(std::move(base), s));
  };
  auto engine = StorageEngine::Open(path_, options).value();
  Result<uint64_t> scan = ScanAll(engine.get());
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
  EXPECT_GE(engine->io_stats().Snapshot().corruptions_detected, 1u);
}

TEST_F(StorageIntegrityTest, DemandReadJoinsInflightPrefetch) {
  auto engine = StorageEngine::Open(path_).value();
  ASSERT_TRUE(CommitRows(engine.get(), 0, 500).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());
  Pager* pager = engine->pager();
  engine->DropCaches();

  const uint64_t snap = pager->BeginSnapshot();
  std::vector<PageId> ids;
  for (PageId id = 1; id < pager->page_count(); ++id) ids.push_back(id);
  ASSERT_FALSE(ids.empty());
  std::unique_ptr<AsyncPrefetch> h = pager->PrefetchPagesAsync(ids, snap);
  ASSERT_NE(h, nullptr);
  // Demand-read one of the in-flight pages before reaping the handle:
  // the read must JOIN the submitted batch (driving its reap) instead of
  // issuing a duplicate main-file read.
  ASSERT_TRUE(pager->ReadPage(ids[0], snap).ok());
  EXPECT_GE(pager->io_stats().Snapshot().read_joins, 1u);
  h->Finish();
  pager->EndSnapshot(snap);
  EXPECT_EQ(ScanAll(engine.get()).value(), 500u);
}

}  // namespace
}  // namespace micronn

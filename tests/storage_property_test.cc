// Property-based storage tests: crash-point fuzzing of WAL recovery and
// randomized multi-transaction engine workloads checked against an
// in-memory model.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "storage/engine.h"
#include "storage/key_encoding.h"
#include "storage/wal.h"
#include "support/fault_injection_file.h"

namespace micronn {
namespace {

class PropertyDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_prop_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& f) const { return dir_ / f; }
  std::filesystem::path dir_;
};

// Crash-point fuzzing: commit a known sequence of transactions, then chop
// the WAL at every possible frame-ish boundary and verify that recovery
// always yields a consistent prefix of committed transactions.
class WalCrashPointTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalCrashPointTest, RecoversConsistentPrefix) {
  const uint64_t seed = GetParam();
  const auto dir = std::filesystem::temp_directory_path() /
                   ("micronn_walfuzz_" + std::to_string(::getpid()) + "_" +
                    std::to_string(seed));
  std::filesystem::create_directories(dir);
  const std::string db_path = dir / "db";

  // Commit 12 transactions, each writing marker rows keyed by txn number.
  constexpr int kTxns = 12;
  {
    auto engine = StorageEngine::Open(db_path).value();
    for (int t = 0; t < kTxns; ++t) {
      auto txn = engine->BeginWrite().value();
      BTree tree = txn->OpenOrCreateTable("t").value();
      Rng rng(seed * 131 + t);
      const int rows = 1 + static_cast<int>(rng.Uniform(40));
      for (int r = 0; r < rows; ++r) {
        ASSERT_TRUE(tree.Put(key::U64(t * 1000 + r),
                             "txn" + std::to_string(t)).ok());
      }
      // Marker row that lets recovery checking identify complete txns.
      ASSERT_TRUE(tree.Put(key::U64(900000 + t), "committed").ok());
      ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
    }
    // Leave without checkpoint: everything lives in the WAL. (Close()
    // would checkpoint, so snapshot the files by copying.)
    std::filesystem::copy_file(db_path, std::string(dir / "frozen"));
    std::filesystem::copy_file(db_path + "-wal",
                               std::string(dir / "frozen-wal"));
  }

  // Chop the frozen WAL at pseudo-random byte offsets and recover.
  const auto wal_size = std::filesystem::file_size(dir / "frozen-wal");
  Rng rng(seed);
  for (int trial = 0; trial < 12; ++trial) {
    const uint64_t cut = rng.Uniform(wal_size + 1);
    const std::string crash_db = dir / ("crash" + std::to_string(trial));
    std::filesystem::copy_file(dir / "frozen", crash_db);
    std::filesystem::copy_file(dir / "frozen-wal", crash_db + "-wal");
    {
      auto file = File::Open(crash_db + "-wal").value();
      ASSERT_TRUE(file->Truncate(cut).ok());
    }
    auto engine = StorageEngine::Open(crash_db).value();
    auto txn = engine->BeginRead().value();
    Result<BTree> tree = txn->OpenTable("t");
    int last_complete = -1;
    if (tree.ok()) {
      for (int t = 0; t < kTxns; ++t) {
        auto marker = tree->Get(key::U64(900000 + t)).value();
        if (marker.has_value()) {
          last_complete = t;
        } else {
          break;
        }
      }
      // Prefix property: if txn T's marker survived, all of T's rows and
      // all earlier txns' markers must be present; no later markers may
      // appear after the first missing one.
      for (int t = 0; t <= last_complete; ++t) {
        EXPECT_TRUE(tree->Get(key::U64(t * 1000 + 0)).value().has_value())
            << "cut=" << cut << " txn=" << t;
      }
      for (int t = last_complete + 1; t < kTxns; ++t) {
        EXPECT_FALSE(tree->Get(key::U64(900000 + t)).value().has_value())
            << "cut=" << cut << " txn=" << t;
      }
    }
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalCrashPointTest,
                         ::testing::Values(1, 2, 3, 4));

// Randomized engine workload vs model across reopen cycles: interleaves
// puts/deletes/commits/rollbacks/checkpoints/reopens and verifies the
// surviving state matches the model of committed operations.
class EngineModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineModelTest, CommittedStateMatchesModel) {
  const uint64_t seed = GetParam();
  const auto dir = std::filesystem::temp_directory_path() /
                   ("micronn_engmodel_" + std::to_string(::getpid()) + "_" +
                    std::to_string(seed));
  std::filesystem::create_directories(dir);
  const std::string path = dir / "db";

  Rng rng(seed);
  std::map<std::string, std::string> model;  // committed state
  auto engine = StorageEngine::Open(path).value();
  {
    auto txn = engine->BeginWrite().value();
    txn->OpenOrCreateTable("t").value();
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }

  for (int round = 0; round < 40; ++round) {
    const uint64_t action = rng.Uniform(10);
    if (action < 6) {
      // A write transaction with several ops; 25% chance of rollback.
      auto txn = engine->BeginWrite().value();
      BTree tree = txn->OpenTable("t").value();
      std::map<std::string, std::optional<std::string>> pending;
      const int ops = 1 + static_cast<int>(rng.Uniform(30));
      for (int i = 0; i < ops; ++i) {
        const std::string k = key::U64(rng.Uniform(200));
        if (rng.Uniform(4) == 0) {
          ASSERT_TRUE(tree.Delete(k).ok());
          pending[k] = std::nullopt;
        } else {
          std::string v(rng.Uniform(300), 'a' + round % 26);
          ASSERT_TRUE(tree.Put(k, v).ok());
          pending[k] = v;
        }
      }
      if (rng.Uniform(4) == 0) {
        engine->Rollback(std::move(txn));
      } else {
        ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
        for (auto& [k, v] : pending) {
          if (v.has_value()) {
            model[k] = *v;
          } else {
            model.erase(k);
          }
        }
      }
    } else if (action < 8) {
      Status st = engine->Checkpoint();
      EXPECT_TRUE(st.ok() || st.IsBusy()) << st.ToString();
    } else {
      // Reopen the engine (clean restart path).
      ASSERT_TRUE(engine->Close().ok());
      engine.reset();
      engine = StorageEngine::Open(path).value();
    }
    // Verify the full committed state every few rounds.
    if (round % 5 == 4) {
      auto txn = engine->BeginRead().value();
      BTree tree = txn->OpenTable("t").value();
      BTreeCursor c = tree.NewCursor();
      ASSERT_TRUE(c.SeekToFirst().ok());
      auto it = model.begin();
      while (c.Valid()) {
        ASSERT_NE(it, model.end()) << "extra key after round " << round;
        EXPECT_EQ(c.key(), it->first);
        EXPECT_EQ(c.value().value(), it->second);
        ASSERT_TRUE(c.Next().ok());
        ++it;
      }
      EXPECT_EQ(it, model.end()) << "missing keys after round " << round;
    }
  }
  engine->Close().ok();
  engine.reset();
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineModelTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// Randomized fault-schedule sweep: the WAL (and sometimes the main file)
// handle fails operations on a seed-derived schedule while a sequence of
// transactions commits. The invariant under ANY schedule:
//   - every acknowledged commit survives a crash-and-recover, and
//   - every transaction is all-or-nothing (an unacknowledged commit may
//     legally survive — e.g. a failed commit fsync whose write proved
//     durable — but it must never be torn).
class FaultScheduleSweepTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  // One transaction: rows t*1000 .. t*1000+rows-1 plus marker 900000+t.
  // Any failure rolls back and reports the txn unacknowledged.
  static Status TryCommitTxn(StorageEngine* engine, int t, Rng* rng) {
    MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<WriteTransaction> txn,
                             engine->BeginWrite());
    Result<BTree> tree = txn->OpenOrCreateTable("t");
    if (!tree.ok()) {
      engine->Rollback(std::move(txn));
      return tree.status();
    }
    const int rows = 1 + static_cast<int>(rng->Uniform(30));
    for (int r = 0; r < rows; ++r) {
      Status st = tree->Put(key::U64(t * 1000 + r), "txn" + std::to_string(t));
      if (!st.ok()) {
        engine->Rollback(std::move(txn));
        return st;
      }
    }
    Status st = tree->Put(key::U64(900000 + t), "committed");
    if (!st.ok()) {
      engine->Rollback(std::move(txn));
      return st;
    }
    return engine->Commit(std::move(txn));
  }
};

TEST_P(FaultScheduleSweepTest, AcknowledgedCommitsSurviveAnySchedule) {
  const uint64_t seed = GetParam();
  const auto dir = std::filesystem::temp_directory_path() /
                   ("micronn_faultsweep_" + std::to_string(::getpid()) + "_" +
                    std::to_string(seed));
  std::filesystem::create_directories(dir);
  const std::string path = dir / "db";
  const std::string crash = dir / "crash";

  Rng rng(seed * 2654435761ULL + 99);

  FaultInjectionFile* wal_file = nullptr;
  FaultInjectionFile* db_file = nullptr;
  PagerOptions opts;
  opts.sync_on_commit = rng.Uniform(2) == 0;
  opts.file_wrapper = [&wal_file, &db_file](std::unique_ptr<FileHandle> base,
                                            std::string_view role)
      -> std::unique_ptr<FileHandle> {
    auto wrapped = std::make_unique<FaultInjectionFile>(std::move(base),
                                                        FaultSchedule{});
    (role == "wal" ? wal_file : db_file) = wrapped.get();
    return wrapped;
  };
  auto engine = StorageEngine::Open(path, opts).value();
  ASSERT_NE(wal_file, nullptr);
  ASSERT_NE(db_file, nullptr);

  // Arm a seed-derived schedule aimed into the upcoming workload (offsets
  // start from the current counters, so setup I/O never absorbs a fault).
  auto arm = [&rng](FaultInjectionFile* f) {
    const FaultCounters c = f->counters();
    FaultSchedule s;
    switch (rng.Uniform(4)) {
      case 0:
        s.fail_write_at = c.writes + 1 + rng.Uniform(25);
        break;
      case 1:
        s.torn_write_at = c.writes + 1 + rng.Uniform(25);
        s.torn_write_bytes = rng.Uniform(2 * Wal::kFrameSize);
        if (rng.Uniform(2) == 0) s.fail_truncate_at = c.truncates + 1;
        break;
      case 2:
        s.fail_sync_at = c.syncs + 1 + rng.Uniform(8);
        break;
      case 3:
        s.fail_read_at = c.reads + 1 + rng.Uniform(60);
        break;
    }
    if (rng.Uniform(3) == 0) s.eintr_every = 2 + rng.Uniform(3);
    f->set_schedule(s);
  };
  arm(wal_file);
  if (rng.Uniform(3) == 0) arm(db_file);

  constexpr int kTxns = 10;
  bool acked[kTxns] = {};
  for (int t = 0; t < kTxns; ++t) {
    acked[t] = TryCommitTxn(engine.get(), t, &rng).ok();
    if (rng.Uniform(4) == 0) {
      engine->Checkpoint().ok();  // allowed to fail under injected faults
    }
  }

  // Freeze the files while the engine is still open — a crash at the end
  // of the workload. (Closing would run a checkpoint through the still-
  // armed schedule and change what is on disk.)
  std::filesystem::copy_file(path, crash);
  std::filesystem::copy_file(path + "-wal", crash + "-wal");

  // Recover the frozen image with a clean (fault-free) stack.
  auto recovered = StorageEngine::Open(crash).value();
  auto txn = recovered->BeginRead().value();
  Result<BTree> tree = txn->OpenTable("t");
  for (int t = 0; t < kTxns; ++t) {
    const bool marker =
        tree.ok() && tree->Get(key::U64(900000 + t)).value().has_value();
    const bool first_row =
        tree.ok() && tree->Get(key::U64(t * 1000)).value().has_value();
    if (acked[t]) {
      EXPECT_TRUE(marker) << "seed=" << seed << ": acknowledged txn " << t
                          << " lost by recovery";
    }
    EXPECT_EQ(marker, first_row)
        << "seed=" << seed << ": txn " << t << " recovered torn";
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultScheduleSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Pipelined-commit property sweep: randomized multi-threaded committers
// race through the group-commit pipeline (staged appends + leader batch
// write + shared fsync) while the WAL fails a seed-derived write/sync
// schedule. Invariants under ANY schedule and interleaving:
//   - per-submission failure isolation: a fault failing the leader's
//     batched write (or the shared fsync) must not acknowledge ANY member
//     of that group — every commit reported ok must survive the crash
//     image, with no exception for followers;
//   - atomicity: every transaction recovers all-or-nothing.
// A start gate releases all committers at once so the schedule lands in a
// genuinely concurrent group even on a single-core CI runner.
class PipelinedCommitSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelinedCommitSweepTest, FaultedGroupAcksNoMember) {
  const uint64_t seed = GetParam();
  const auto dir = std::filesystem::temp_directory_path() /
                   ("micronn_pipesweep_" + std::to_string(::getpid()) + "_" +
                    std::to_string(seed));
  std::filesystem::create_directories(dir);
  const std::string path = dir / "db";
  const std::string crash = dir / "crash";

  Rng rng(seed * 1099511628211ULL + 7);
  FaultInjectionFile* wal_file = nullptr;
  PagerOptions opts;
  opts.sync_on_commit = true;
  opts.commit_pipeline = true;
  opts.file_wrapper = [&wal_file](std::unique_ptr<FileHandle> base,
                                  std::string_view role)
      -> std::unique_ptr<FileHandle> {
    if (role != "wal") return base;
    auto wrapped =
        std::make_unique<FaultInjectionFile>(std::move(base), FaultSchedule{});
    wal_file = wrapped.get();
    return wrapped;
  };
  auto engine = StorageEngine::Open(path, opts).value();
  ASSERT_NE(wal_file, nullptr);
  {
    auto txn = engine->BeginWrite().value();
    txn->OpenOrCreateTable("t").value();
    ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
  }

  // Arm one seed-derived WAL fault aimed into the sweep (write-path only:
  // the sweep probes commit acknowledgement, not read errors). Offsets
  // start from the current counters so setup I/O never absorbs it.
  {
    const FaultCounters c = wal_file->counters();
    FaultSchedule s;
    switch (rng.Uniform(3)) {
      case 0:
        s.fail_write_at = c.writes + 1 + rng.Uniform(20);
        break;
      case 1:
        s.torn_write_at = c.writes + 1 + rng.Uniform(20);
        s.torn_write_bytes = rng.Uniform(3 * Wal::kFrameSize);
        if (rng.Uniform(2) == 0) s.fail_truncate_at = c.truncates + 1;
        break;
      case 2:
        s.fail_sync_at = c.syncs + 1 + rng.Uniform(12);
        break;
    }
    wal_file->set_schedule(s);
  }

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 6;
  std::array<std::array<bool, kTxnsPerThread>, kThreads> acked{};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng trng(seed * 7919 + t);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * 100 + i;
        auto txn = engine->BeginWrite();
        if (!txn.ok()) continue;
        Result<BTree> tree = (*txn)->OpenTable("t");
        if (!tree.ok()) {
          engine->Rollback(std::move(*txn));
          continue;
        }
        bool built = true;
        const int rows = 1 + static_cast<int>(trng.Uniform(12));
        for (int r = 0; r < rows && built; ++r) {
          built = tree->Put(key::U64(id * 1000 + r),
                            "txn" + std::to_string(id)).ok();
        }
        if (built) {
          built = tree->Put(key::U64(900000 + id), "committed").ok();
        }
        if (!built) {
          engine->Rollback(std::move(*txn));
          continue;
        }
        acked[t][i] = engine->Commit(std::move(*txn)).ok();
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  // Freeze the files while the engine is still open (closing would run a
  // checkpoint and change what a crash would have found).
  std::filesystem::copy_file(path, crash);
  std::filesystem::copy_file(path + "-wal", crash + "-wal");

  auto recovered = StorageEngine::Open(crash).value();
  auto txn = recovered->BeginRead().value();
  Result<BTree> tree = txn->OpenTable("t");
  ASSERT_TRUE(tree.ok());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kTxnsPerThread; ++i) {
      const uint64_t id = static_cast<uint64_t>(t) * 100 + i;
      const bool marker =
          tree->Get(key::U64(900000 + id)).value().has_value();
      const bool first_row =
          tree->Get(key::U64(id * 1000)).value().has_value();
      if (acked[t][i]) {
        EXPECT_TRUE(marker) << "seed=" << seed << ": acknowledged commit ("
                            << t << "," << i << ") lost by recovery";
      }
      EXPECT_EQ(marker, first_row)
          << "seed=" << seed << ": commit (" << t << "," << i
          << ") recovered torn";
    }
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedCommitSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

using FreelistTest = PropertyDir;

TEST_F(FreelistTest, PagesRecycleAcrossTableLifecycles) {
  // Creating and dropping tables repeatedly must not grow the file
  // unboundedly: freed pages get reused.
  auto engine = StorageEngine::Open(Path("db")).value();
  uint32_t pages_after_first = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    {
      auto txn = engine->BeginWrite().value();
      BTree tree = txn->OpenOrCreateTable("cycle").value();
      for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(tree.Put(key::U64(i), std::string(500, 'x')).ok());
      }
      ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
    }
    {
      auto txn = engine->BeginWrite().value();
      ASSERT_TRUE(txn->DropTable("cycle").ok());
      ASSERT_TRUE(engine->Commit(std::move(txn)).ok());
    }
    if (cycle == 0) {
      pages_after_first = engine->pager()->page_count();
    }
  }
  // Allow mild slack for freelist/catalog pages, but no linear growth.
  EXPECT_LE(engine->pager()->page_count(), pages_after_first + 8);
}

}  // namespace
}  // namespace micronn

// Deterministic fault injection for the storage stack.
//
// FaultInjectionFile decorates any FileHandle and fails (or degrades)
// operations on a preset schedule: "the 3rd write errors", "the 2nd read
// comes back short", "the next Append writes only half its bytes and then
// reports failure" (a torn tail), "every 2nd read hits EINTR-and-retries".
// Installed under the pager via PagerOptions::file_wrapper, it turns the
// crash matrix of wal_recovery_test into an in-process, fully
// deterministic sweep — no process kill, no copy-while-open timing.
//
// Counters are 1-based and count *attempts*: an op that is failed by the
// schedule still consumes its slot.
#ifndef MICRONN_TESTS_SUPPORT_FAULT_INJECTION_FILE_H_
#define MICRONN_TESTS_SUPPORT_FAULT_INJECTION_FILE_H_

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "storage/file.h"

namespace micronn {

/// One file's fault schedule. 0 = never for every field.
struct FaultSchedule {
  /// Fail the Nth ReadAt (and any batch op that lands on it) with IOError.
  uint64_t fail_read_at = 0;
  /// The Nth ReadAt returns IOError("short read") — the same failure a
  /// truncated file produces.
  uint64_t short_read_at = 0;
  /// Every Nth read is "interrupted" and transparently restarted (the
  /// base read runs twice, first result discarded) — the EINTR-restart
  /// pattern; callers must produce identical results under it.
  uint64_t eintr_every = 0;
  /// Fail the Nth WriteAt with IOError.
  uint64_t fail_write_at = 0;
  /// Fail the Nth WriteAt *after* writing the first `torn_write_bytes`
  /// bytes — a torn tail, as when power dies mid-write. The WAL places
  /// commit frames with positional writes, so this is the torn-commit
  /// injection point.
  uint64_t torn_write_at = 0;
  size_t torn_write_bytes = 0;
  /// Same tear for the Nth Append.
  uint64_t torn_append_at = 0;
  size_t torn_append_bytes = 0;
  /// Fail the Nth Append cleanly (nothing written).
  uint64_t fail_append_at = 0;
  /// Fail the Nth Sync with IOError (the write may or may not be durable —
  /// exactly the ambiguity real fsync failures have).
  uint64_t fail_sync_at = 0;
  /// Fail the Nth Truncate with IOError.
  uint64_t fail_truncate_at = 0;

  // --- Integrity / degraded-mode fault modes ---

  /// The Nth ReadAt succeeds but XORs `corrupt_read_xor` into the byte at
  /// index `corrupt_read_byte % len` of the returned buffer — a bit-flip
  /// between the platter and the page cache. Checksummed readers must
  /// surface Corruption, never the flipped data.
  uint64_t corrupt_read_at = 0;
  size_t corrupt_read_byte = 0;
  uint8_t corrupt_read_xor = 0xFF;
  /// From the Nth write-side op onward (WriteAt and Append share the
  /// count), every write-side op fails with ResourceExhausted — a full
  /// disk stays full until space is freed (set_schedule with 0).
  uint64_t enospc_after = 0;
  /// From the Nth ReadAt onward every read fails with IOError — dying
  /// media. Permanent per the taxonomy: retries must NOT mask it.
  uint64_t sticky_eio_read_at = 0;
  /// The Nth ReadAt — and the next `transient_read_failures - 1` attempts
  /// after it — fail with Unavailable, then reads succeed again. The
  /// retry layer must absorb these within its budget.
  uint64_t transient_read_at = 0;
  uint64_t transient_read_failures = 1;
};

/// Operation counts observed so far (for assertions and for deriving the
/// next sweep's schedule from a fault-free run).
struct FaultCounters {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t appends = 0;
  uint64_t syncs = 0;
  uint64_t truncates = 0;
};

class FaultInjectionFile final : public FileHandle {
 public:
  FaultInjectionFile(std::unique_ptr<FileHandle> base, FaultSchedule schedule)
      : base_(std::move(base)), schedule_(schedule) {}

  Status ReadAt(uint64_t offset, void* buf, size_t n) override {
    bool interrupted = false;
    bool corrupt = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.reads;
      if (counters_.reads == schedule_.fail_read_at) {
        return Status::IOError("injected read fault in " + base_->path());
      }
      if (counters_.reads == schedule_.short_read_at) {
        return Status::IOError("injected short read in " + base_->path());
      }
      if (schedule_.sticky_eio_read_at > 0 &&
          counters_.reads >= schedule_.sticky_eio_read_at) {
        return Status::IOError("injected sticky EIO in " + base_->path());
      }
      if (schedule_.transient_read_at > 0 &&
          counters_.reads >= schedule_.transient_read_at &&
          counters_.reads <
              schedule_.transient_read_at + schedule_.transient_read_failures) {
        return Status::Unavailable("injected transient read fault in " +
                                   base_->path());
      }
      interrupted = schedule_.eintr_every > 0 &&
                    counters_.reads % schedule_.eintr_every == 0;
      corrupt = counters_.reads == schedule_.corrupt_read_at;
    }
    if (interrupted) {
      base_->ReadAt(offset, buf, n).ok();  // interrupted attempt, restarted
    }
    Status st = base_->ReadAt(offset, buf, n);
    if (corrupt && st.ok() && n > 0) {
      // Bit-flip between the platter and the caller's buffer.
      static_cast<uint8_t*>(buf)[schedule_.corrupt_read_byte % n] ^=
          schedule_.corrupt_read_xor;
    }
    return st;
  }

  // Each batched op consumes one read slot, so a schedule derived from a
  // blocking-backend run fires at the same logical read regardless of how
  // the ops were grouped.
  Status ReadBatch(ReadOp* ops, size_t n) override {
    for (size_t i = 0; i < n; ++i) {
      ops[i].status = ReadAt(ops[i].offset, ops[i].buf, ops[i].len);
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const void* buf, size_t n) override {
    bool torn = false;
    size_t torn_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.writes;
      if (counters_.writes == schedule_.fail_write_at) {
        return Status::IOError("injected write fault in " + base_->path());
      }
      if (schedule_.enospc_after > 0 &&
          counters_.writes + counters_.appends >= schedule_.enospc_after) {
        return Status::ResourceExhausted("injected ENOSPC in " +
                                         base_->path());
      }
      torn = counters_.writes == schedule_.torn_write_at;
      torn_bytes = schedule_.torn_write_bytes;
    }
    if (torn) {
      const size_t keep = std::min(torn_bytes, n);
      if (keep > 0) {
        base_->WriteAt(offset, buf, keep).ok();  // the tear's surviving prefix
      }
      return Status::IOError("injected torn write in " + base_->path());
    }
    return base_->WriteAt(offset, buf, n);
  }

  Status Append(const void* buf, size_t n) override {
    bool torn = false;
    size_t torn_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.appends;
      if (counters_.appends == schedule_.fail_append_at) {
        return Status::IOError("injected append fault in " + base_->path());
      }
      if (schedule_.enospc_after > 0 &&
          counters_.writes + counters_.appends >= schedule_.enospc_after) {
        return Status::ResourceExhausted("injected ENOSPC in " +
                                         base_->path());
      }
      torn = counters_.appends == schedule_.torn_append_at;
      torn_bytes = schedule_.torn_append_bytes;
    }
    if (torn) {
      const size_t keep = std::min(torn_bytes, n);
      if (keep > 0) {
        base_->Append(buf, keep).ok();  // the surviving prefix of the tear
      }
      return Status::IOError("injected torn append in " + base_->path());
    }
    return base_->Append(buf, n);
  }

  Status Sync() override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.syncs;
      if (counters_.syncs == schedule_.fail_sync_at) {
        return Status::IOError("injected sync fault in " + base_->path());
      }
    }
    return base_->Sync();
  }

  Status Truncate(uint64_t size) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.truncates;
      if (counters_.truncates == schedule_.fail_truncate_at) {
        return Status::IOError("injected truncate fault in " + base_->path());
      }
    }
    return base_->Truncate(size);
  }

  uint64_t size() const override { return base_->size(); }
  const std::string& path() const override { return base_->path(); }
  void set_io_stats(IoStats* stats) override { base_->set_io_stats(stats); }

  FaultCounters counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
  }

  /// Replace the schedule mid-run. Counters keep running, so tests can read
  /// counters() after setup and arm a fault at exactly the next operation.
  void set_schedule(const FaultSchedule& schedule) {
    std::lock_guard<std::mutex> lock(mutex_);
    schedule_ = schedule;
  }

 private:
  std::unique_ptr<FileHandle> base_;
  FaultSchedule schedule_;
  mutable std::mutex mutex_;
  FaultCounters counters_;
};

}  // namespace micronn

#endif  // MICRONN_TESTS_SUPPORT_FAULT_INJECTION_FILE_H_

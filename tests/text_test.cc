#include <gtest/gtest.h>

#include <filesystem>

#include "storage/engine.h"
#include "text/fts_index.h"
#include "text/tokenizer.h"

namespace micronn {
namespace {

TEST(TokenizerTest, SplitsAndLowercases) {
  const auto tokens = Tokenize("Black Cat, playing-with YARN!");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "black");
  EXPECT_EQ(tokens[1], "cat");
  EXPECT_EQ(tokens[2], "playing");
  EXPECT_EQ(tokens[3], "with");
  EXPECT_EQ(tokens[4], "yarn");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ,,, ---").empty());
}

TEST(TokenizerTest, NumbersAreTokens) {
  const auto tokens = Tokenize("photo 2024 trip");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], "2024");
}

TEST(TokenizerTest, TokenSetDedupes) {
  const auto set = TokenSet("cat dog cat bird dog");
  ASSERT_EQ(set.size(), 3u);
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
}

TEST(TokenizerTest, LongTokensTruncated) {
  const std::string longword(200, 'a');
  const auto tokens = Tokenize(longword);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].size(), kMaxTokenLength);
}

class FtsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_fts_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    engine_ = StorageEngine::Open(dir_ / "db").value();
    txn_ = engine_->BeginWrite().value();
    postings_ = std::make_unique<BTree>(
        txn_->OpenOrCreateTable(FtsPostingsTableName("tags")).value());
    freqs_ = std::make_unique<BTree>(
        txn_->OpenOrCreateTable(FtsFreqsTableName("tags")).value());
    fts_ = std::make_unique<FtsIndex>(*postings_, *freqs_);
  }
  void TearDown() override {
    fts_.reset();
    postings_.reset();
    freqs_.reset();
    if (txn_) engine_->Rollback(std::move(txn_));
    engine_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<StorageEngine> engine_;
  std::unique_ptr<WriteTransaction> txn_;
  std::unique_ptr<BTree> postings_, freqs_;
  std::unique_ptr<FtsIndex> fts_;
};

TEST_F(FtsTest, AddAndLookup) {
  ASSERT_TRUE(fts_->AddDocument(1, "cat yarn").ok());
  ASSERT_TRUE(fts_->AddDocument(2, "cat dog").ok());
  EXPECT_EQ(fts_->DocumentFrequency("cat").value(), 2u);
  EXPECT_EQ(fts_->DocumentFrequency("dog").value(), 1u);
  EXPECT_EQ(fts_->DocumentFrequency("absent").value(), 0u);
  auto cats = fts_->PostingsOf("cat").value();
  EXPECT_EQ(cats, (std::vector<uint64_t>{1, 2}));
}

TEST_F(FtsTest, DuplicateAddIsIdempotent) {
  ASSERT_TRUE(fts_->AddDocument(1, "cat cat cat").ok());
  ASSERT_TRUE(fts_->AddDocument(1, "cat").ok());
  EXPECT_EQ(fts_->DocumentFrequency("cat").value(), 1u);
}

TEST_F(FtsTest, RemoveDocumentReversesAdd) {
  ASSERT_TRUE(fts_->AddDocument(1, "cat yarn").ok());
  ASSERT_TRUE(fts_->AddDocument(2, "cat").ok());
  ASSERT_TRUE(fts_->RemoveDocument(1, "cat yarn").ok());
  EXPECT_EQ(fts_->DocumentFrequency("cat").value(), 1u);
  EXPECT_EQ(fts_->DocumentFrequency("yarn").value(), 0u);
  EXPECT_TRUE(fts_->PostingsOf("yarn").value().empty());
}

TEST_F(FtsTest, MatchConjunction) {
  ASSERT_TRUE(fts_->AddDocument(1, "cat yarn black").ok());
  ASSERT_TRUE(fts_->AddDocument(2, "cat yarn").ok());
  ASSERT_TRUE(fts_->AddDocument(3, "cat black").ok());
  ASSERT_TRUE(fts_->AddDocument(4, "dog").ok());
  EXPECT_EQ(fts_->MatchConjunction({"cat", "yarn"}).value(),
            (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(fts_->MatchConjunction({"cat", "yarn", "black"}).value(),
            (std::vector<uint64_t>{1}));
  EXPECT_TRUE(fts_->MatchConjunction({"cat", "unseen"}).value().empty());
  EXPECT_FALSE(fts_->MatchConjunction({}).ok());
}

TEST_F(FtsTest, ContainsProbe) {
  ASSERT_TRUE(fts_->AddDocument(7, "alpha beta").ok());
  EXPECT_TRUE(fts_->Contains(7, "alpha").value());
  EXPECT_FALSE(fts_->Contains(7, "gamma").value());
  EXPECT_FALSE(fts_->Contains(8, "alpha").value());
}

TEST_F(FtsTest, ManyDocumentsScale) {
  for (uint64_t doc = 1; doc <= 500; ++doc) {
    std::string tags = "common";
    if (doc % 10 == 0) tags += " decile";
    if (doc % 100 == 0) tags += " centile";
    ASSERT_TRUE(fts_->AddDocument(doc, tags).ok());
  }
  EXPECT_EQ(fts_->DocumentFrequency("common").value(), 500u);
  EXPECT_EQ(fts_->DocumentFrequency("decile").value(), 50u);
  EXPECT_EQ(fts_->DocumentFrequency("centile").value(), 5u);
  EXPECT_EQ(fts_->MatchConjunction({"decile", "centile"}).value().size(), 5u);
}

}  // namespace
}  // namespace micronn

// Property tests for update semantics: the database's contents must match
// an in-memory model under arbitrary interleavings of upsert/delete/
// maintain/rebuild — the §3.6 contract in executable form.
#include <gtest/gtest.h>

#include <filesystem>
#include <cmath>
#include <map>

#include "common/rng.h"
#include "core/db.h"
#include "datagen/dataset.h"

namespace micronn {
namespace {

struct Model {
  // asset -> first float of its vector (enough to identify the version).
  std::map<std::string, float> assets;
};

class UpsertModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpsertModelTest, MatchesModelUnderRandomOps) {
  const uint64_t seed = GetParam();
  const auto dir = std::filesystem::temp_directory_path() /
                   ("micronn_upsmodel_" + std::to_string(::getpid()) + "_" +
                    std::to_string(seed));
  std::filesystem::create_directories(dir);
  constexpr uint32_t kDim = 4;

  DbOptions options;
  options.dim = kDim;
  options.target_cluster_size = 20;
  options.rebuild_growth_threshold = 1000.0;  // rebuild only when we say so
  auto db = DB::Open(dir / "db.mnn", options).value();

  Rng rng(seed);
  Model model;
  const size_t asset_space = 60;
  auto asset_name = [](size_t i) { return "asset" + std::to_string(i); };

  for (int round = 0; round < 120; ++round) {
    const uint64_t action = rng.Uniform(20);
    if (action < 12) {  // upsert (new or replace)
      const std::string asset = asset_name(rng.Uniform(asset_space));
      const float marker = static_cast<float>(round + 1);
      UpsertRequest req;
      req.asset_id = asset;
      req.vector = {marker, 0.f, 0.f, 0.f};
      ASSERT_TRUE(db->Upsert({req}).ok());
      model.assets[asset] = marker;
    } else if (action < 16) {  // delete (may be absent)
      const std::string asset = asset_name(rng.Uniform(asset_space));
      ASSERT_TRUE(db->Delete({asset}).ok());
      model.assets.erase(asset);
    } else if (action < 18) {  // incremental maintenance
      ASSERT_TRUE(db->Maintain().ok());
    } else {  // full rebuild
      ASSERT_TRUE(db->BuildIndex().ok());
    }

    // Invariant 1: row count matches the model.
    EXPECT_EQ(db->VectorCount().value(), model.assets.size())
        << "round " << round;
    // Invariant 2 (spot check): each live asset is findable at its latest
    // version via exact search on its own vector, with distance 0.
    if (round % 10 == 9 && !model.assets.empty()) {
      auto it = model.assets.begin();
      std::advance(it,
                   static_cast<long>(rng.Uniform(model.assets.size())));
      SearchRequest req;
      req.query = {it->second, 0.f, 0.f, 0.f};
      req.k = 1;
      req.exact = true;
      auto resp = db->Search(req).value();
      ASSERT_FALSE(resp.items.empty()) << "round " << round;
      EXPECT_EQ(resp.items[0].asset_id, it->first) << "round " << round;
      EXPECT_FLOAT_EQ(resp.items[0].distance, 0.f) << "round " << round;
    }
  }

  // Final exhaustive check: retrieve everything and compare asset sets.
  SearchRequest all;
  all.query = {0.f, 0.f, 0.f, 0.f};
  all.k = static_cast<uint32_t>(model.assets.size() + 10);
  all.exact = true;
  auto resp = db->Search(all).value();
  EXPECT_EQ(resp.items.size(), model.assets.size());
  std::map<std::string, float> found;
  for (const auto& item : resp.items) {
    // Re-derive the marker from the stored distance: |marker - 0|^2.
    found[item.asset_id] = std::sqrt(item.distance);
  }
  for (const auto& [asset, marker] : model.assets) {
    auto it = found.find(asset);
    ASSERT_NE(it, found.end()) << asset;
    EXPECT_NEAR(it->second, marker, 1e-3) << asset;
  }
  db.reset();
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpsertModelTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(UpsertEdgeTest, EmptyBatchesAreNoOps) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("micronn_upsedge_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  DbOptions options;
  options.dim = 4;
  auto db = DB::Open(dir / "db.mnn", options).value();
  EXPECT_TRUE(db->Upsert({}).ok());
  EXPECT_TRUE(db->Delete({}).ok());
  EXPECT_EQ(db->VectorCount().value(), 0u);
  // Upserting the same asset twice in one batch: last write wins.
  UpsertRequest a, b;
  a.asset_id = b.asset_id = "dup";
  a.vector = {1, 0, 0, 0};
  b.vector = {0, 1, 0, 0};
  EXPECT_TRUE(db->Upsert({a, b}).ok());
  EXPECT_EQ(db->VectorCount().value(), 1u);
  SearchRequest req;
  req.query = {0, 1, 0, 0};
  req.k = 1;
  auto resp = db->Search(req).value();
  EXPECT_FLOAT_EQ(resp.items[0].distance, 0.f);
  // Empty asset id rejected atomically (the whole batch rolls back).
  UpsertRequest bad;
  bad.asset_id = "";
  bad.vector = {0, 0, 0, 1};
  UpsertRequest good;
  good.asset_id = "good";
  good.vector = {0, 0, 1, 0};
  EXPECT_FALSE(db->Upsert({good, bad}).ok());
  EXPECT_EQ(db->VectorCount().value(), 1u);  // "good" rolled back too
  db.reset();
  std::filesystem::remove_all(dir);
}

TEST(UpsertEdgeTest, ZeroVectorWithCosineDoesNotCrash) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("micronn_upszero_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  DbOptions options;
  options.dim = 4;
  options.metric = Metric::kCosine;
  auto db = DB::Open(dir / "db.mnn", options).value();
  UpsertRequest req;
  req.asset_id = "zero";
  req.vector = {0, 0, 0, 0};  // norm 0: normalization must not divide by 0
  EXPECT_TRUE(db->Upsert({req}).ok());
  SearchRequest s;
  s.query = {0, 0, 0, 0};
  s.k = 1;
  EXPECT_TRUE(db->Search(s).ok());
  db.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace micronn

// WAL crash-recovery matrix at the engine level. Each case freezes the
// database files mid-life exactly as a power cut would (copying the main
// file + WAL while the engine is still open), mutilates the copy the way a
// specific crash would, and verifies the recovered row counts.
//
// Baseline for every case: batch A (100 rows) committed AND checkpointed
// into the main file, then batch B (100 rows) committed into the WAL only.
// Recovery must keep batch A in all cases; batch B survives iff its commit
// record is intact.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "storage/engine.h"
#include "storage/key_encoding.h"
#include "storage/wal.h"

namespace micronn {
namespace {

constexpr uint64_t kBatchRows = 100;

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_walrec_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "db";
    crash_ = dir_ / "crash_db";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Status CommitBatch(StorageEngine* engine, uint64_t start) {
    MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<WriteTransaction> txn,
                             engine->BeginWrite());
    Result<BTree> t = txn->OpenOrCreateTable("t");
    if (!t.ok()) {
      engine->Rollback(std::move(txn));
      return t.status();
    }
    for (uint64_t i = start; i < start + kBatchRows; ++i) {
      Status st = t->Put(key::U64(i), "row" + std::to_string(i));
      if (!st.ok()) {
        engine->Rollback(std::move(txn));
        return st;
      }
    }
    txn->AddRowDelta("t", static_cast<int64_t>(kBatchRows));
    return engine->Commit(std::move(txn));
  }

  // Opens a fresh db, commits + checkpoints batch A, commits batch B into
  // the WAL, then freezes both files into `crash_` while the engine is
  // still open (no close-time checkpoint runs). Returns the open engine so
  // callers control when it dies.
  std::unique_ptr<StorageEngine> SetUpCrashImage() {
    auto engine = StorageEngine::Open(path_).value();
    EXPECT_TRUE(CommitBatch(engine.get(), 0).ok());
    EXPECT_TRUE(engine->Checkpoint().ok());  // batch A -> main file
    EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());  // B -> WAL
    std::filesystem::copy_file(path_, crash_);
    std::filesystem::copy_file(path_ + "-wal", crash_ + "-wal");
    return engine;
  }

  uint64_t RecoveredRowCount() {
    auto engine = StorageEngine::Open(crash_).value();
    auto txn = engine->BeginRead().value();
    auto info = txn->GetTableInfo("t");
    EXPECT_TRUE(info.ok());
    const uint64_t catalog_count = info.ok() ? info->row_count : 0;
    // Cross-check the catalog count against a real scan.
    auto t = txn->OpenTable("t");
    EXPECT_TRUE(t.ok());
    uint64_t scanned = 0;
    if (t.ok()) {
      BTreeCursor c = t->NewCursor();
      EXPECT_TRUE(c.SeekToFirst().ok());
      while (c.Valid()) {
        ++scanned;
        EXPECT_TRUE(c.Next().ok());
      }
    }
    EXPECT_EQ(scanned, catalog_count);
    return catalog_count;
  }

  void CorruptWalByte(uint64_t offset) {
    std::fstream f(crash_ + "-wal",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b ^= 0x5a;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  std::filesystem::path dir_;
  std::string path_;
  std::string crash_;
};

TEST_F(WalRecoveryTest, ReopenAfterKillBetweenCommitAndCheckpoint) {
  // The un-mutilated image: the WAL holds a complete commit for batch B
  // that never reached the main file. Recovery must replay it.
  auto engine = SetUpCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);

  // The recovered instance checkpointed on close; a further reopen of the
  // now self-contained image loses nothing either.
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, TruncatedTailFrameDropsWholeCommit) {
  auto engine = SetUpCrashImage();
  // Chop 100 bytes off the last frame: the frame that carries batch B's
  // commit marker is torn, so the entire commit must be discarded.
  const uint64_t wal_size = std::filesystem::file_size(crash_ + "-wal");
  ASSERT_GT(wal_size, 100u);
  std::filesystem::resize_file(crash_ + "-wal", wal_size - 100);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
  // Recovery truncated the torn tail on first open; reopening the settled
  // image yields the same state.
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, TruncatedToFrameBoundaryStillDropsCommit) {
  auto engine = SetUpCrashImage();
  // Remove exactly the last frame. The remaining frames of batch B are
  // individually valid but the commit marker is gone: still all-or-nothing.
  const uint64_t wal_size = std::filesystem::file_size(crash_ + "-wal");
  ASSERT_GE(wal_size, Wal::kFrameSize);
  std::filesystem::resize_file(crash_ + "-wal", wal_size - Wal::kFrameSize);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, TornCommitRecordDropsWholeCommit) {
  auto engine = SetUpCrashImage();
  // Flip one byte in the page image of the WAL's final frame (the commit
  // record): its checksum no longer matches, so batch B is discarded.
  const uint64_t wal_size = std::filesystem::file_size(crash_ + "-wal");
  CorruptWalByte(wal_size - Wal::kFrameSize + Wal::kFrameHeaderSize + 512);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, CorruptMidCommitFrameDropsFromThatPoint) {
  auto engine = SetUpCrashImage();
  // Corrupt the FIRST frame of the WAL (batch B spans several frames): the
  // commit is unusable from its first page on, so none of it survives.
  CorruptWalByte(Wal::kHeaderSize + Wal::kFrameHeaderSize + 512);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, NonConsecutiveCommitSeqIsDiscardedAsStaleTail) {
  // Commits within one WAL generation carry strictly consecutive
  // sequences. A tail whose sequence skips ahead can only be the remnant
  // of an aborted commit that a later, smaller commit partially overwrote;
  // recovery must refuse to stitch it into history.
  IoStats stats;
  const std::string wal_path = (dir_ / "wal").string();
  {
    auto wal = Wal::Open(wal_path, &stats).value();
    Page p;
    p.Zero();
    p.WriteU32(0, 1);
    ASSERT_TRUE(wal->AppendCommit({{3, &p}}, 1, false).ok());
    p.WriteU32(0, 2);
    ASSERT_TRUE(wal->AppendCommit({{3, &p}}, 3, false).ok());  // skips seq 2
  }
  auto wal = Wal::Open(wal_path, &stats).value();
  EXPECT_EQ(wal->frame_count(), 1u);           // only the seq-1 commit
  EXPECT_EQ(wal->last_committed_seq(), 1u);
  Page out;
  ASSERT_TRUE(wal->ReadFrame(1, &out).ok());
  EXPECT_EQ(out.ReadU32(0), 1u);
}

TEST_F(WalRecoveryTest, KillMidPartialCheckpointReplaysOnlyUnfoldedFrames) {
  // A pinned reader holds the backfill horizon after batch A, so the
  // checkpoint folds only A's frames and persists the watermark; the
  // crash image freezes a WAL whose folded prefix is A and whose
  // unfolded tail is B.
  auto engine = StorageEngine::Open(path_).value();
  EXPECT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  const uint64_t folded_frames = engine->pager()->wal_frame_count();
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());  // partial: folds A only
  ASSERT_EQ(engine->pager()->wal_backfill_watermark(), folded_frames);
  ASSERT_GT(engine->pager()->wal_frame_count(), folded_frames);
  std::filesystem::copy_file(path_, crash_);
  std::filesystem::copy_file(path_ + "-wal", crash_ + "-wal");

  // The watermark survived the crash, so recovery skips re-indexing the
  // folded prefix (A comes from the main file) and replays only the
  // unfolded tail (B).
  {
    IoStats stats;
    auto wal = Wal::Open(crash_ + "-wal", &stats).value();
    EXPECT_EQ(wal->backfill_watermark(), folded_frames);
    EXPECT_GT(wal->frame_count(), folded_frames);
  }
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, TornFoldedPrefixFallsBackToCheckpointedState) {
  // Same partial-checkpoint image as above, but with a byte shot into the
  // *folded* region. Recovery cannot anchor the commit chain on a torn
  // prefix, so it discards the whole log — losing only batch B, which was
  // never acknowledged durable — and serves the checkpointed main file.
  auto engine = StorageEngine::Open(path_).value();
  EXPECT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());  // partial: folds A only
  ASSERT_GT(engine->pager()->wal_backfill_watermark(), 0u);
  std::filesystem::copy_file(path_, crash_);
  std::filesystem::copy_file(path_ + "-wal", crash_ + "-wal");
  CorruptWalByte(Wal::kHeaderSize + Wal::kFrameHeaderSize + 512);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
  // The discarded log was truncated during recovery; a further reopen of
  // the settled image is stable.
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, CorruptWalHeaderOnlyCostsTheWatermark) {
  // Shoot a byte into the WAL *file header* (the watermark field). The
  // header checksum fails, recovery falls back to watermark 0 and simply
  // re-indexes every frame — batch B still replays.
  auto engine = SetUpCrashImage();
  CorruptWalByte(8);  // inside the backfill watermark field

  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, KillAfterCheckpointNeedsNoWal) {
  auto engine = SetUpCrashImage();
  // Checkpoint batch B too, then freeze. Recovery must not depend on the
  // WAL at all: simulate the crash image losing it entirely.
  ASSERT_TRUE(engine->Checkpoint().ok());
  std::filesystem::copy_file(path_, crash_,
                             std::filesystem::copy_options::overwrite_existing);
  ASSERT_TRUE(RemoveFileIfExists(crash_ + "-wal").ok());

  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

}  // namespace
}  // namespace micronn

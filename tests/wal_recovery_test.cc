// WAL crash-recovery matrix at the engine level. Each case freezes the
// database files mid-life exactly as a power cut would (copying the main
// file + WAL while the engine is still open), mutilates the copy the way a
// specific crash would, and verifies the recovered row counts.
//
// Baseline for every case: batch A (100 rows) committed AND checkpointed
// into the main file, then batch B (100 rows) committed into the WAL only.
// Recovery must keep batch A in all cases; batch B survives iff its commit
// record is intact.
// A second, fully in-process matrix drives the same invariants through
// FaultInjectionFile (tests/support/): the WAL file handle itself fails a
// scheduled write/sync/truncate, so the failure surfaces as a commit error
// on the live engine — deterministic, no process kill, no copy timing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/engine.h"
#include "storage/key_encoding.h"
#include "storage/wal.h"
#include "support/fault_injection_file.h"

namespace micronn {
namespace {

constexpr uint64_t kBatchRows = 100;

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_walrec_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "db";
    crash_ = dir_ / "crash_db";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Status CommitBatch(StorageEngine* engine, uint64_t start) {
    MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<WriteTransaction> txn,
                             engine->BeginWrite());
    Result<BTree> t = txn->OpenOrCreateTable("t");
    if (!t.ok()) {
      engine->Rollback(std::move(txn));
      return t.status();
    }
    for (uint64_t i = start; i < start + kBatchRows; ++i) {
      Status st = t->Put(key::U64(i), "row" + std::to_string(i));
      if (!st.ok()) {
        engine->Rollback(std::move(txn));
        return st;
      }
    }
    txn->AddRowDelta("t", static_cast<int64_t>(kBatchRows));
    return engine->Commit(std::move(txn));
  }

  // Opens a fresh db, commits + checkpoints batch A, commits batch B into
  // the WAL, then freezes both files into `crash_` while the engine is
  // still open (no close-time checkpoint runs). Returns the open engine so
  // callers control when it dies.
  std::unique_ptr<StorageEngine> SetUpCrashImage() {
    auto engine = StorageEngine::Open(path_).value();
    EXPECT_TRUE(CommitBatch(engine.get(), 0).ok());
    EXPECT_TRUE(engine->Checkpoint().ok());  // batch A -> main file
    EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());  // B -> WAL
    std::filesystem::copy_file(path_, crash_);
    std::filesystem::copy_file(path_ + "-wal", crash_ + "-wal");
    return engine;
  }

  uint64_t RecoveredRowCount() {
    auto engine = StorageEngine::Open(crash_).value();
    auto txn = engine->BeginRead().value();
    auto info = txn->GetTableInfo("t");
    EXPECT_TRUE(info.ok());
    const uint64_t catalog_count = info.ok() ? info->row_count : 0;
    // Cross-check the catalog count against a real scan.
    auto t = txn->OpenTable("t");
    EXPECT_TRUE(t.ok());
    uint64_t scanned = 0;
    if (t.ok()) {
      BTreeCursor c = t->NewCursor();
      EXPECT_TRUE(c.SeekToFirst().ok());
      while (c.Valid()) {
        ++scanned;
        EXPECT_TRUE(c.Next().ok());
      }
    }
    EXPECT_EQ(scanned, catalog_count);
    return catalog_count;
  }

  // Opens the engine with the WAL file wrapped in a FaultInjectionFile
  // (no faults armed yet — tests read counters() and arm a schedule at
  // exactly the operation under test). The wrapper pointer stays valid for
  // the engine's lifetime; it is owned by the pager.
  std::unique_ptr<StorageEngine> OpenWithWalFaults(bool sync_on_commit) {
    PagerOptions opts;
    opts.sync_on_commit = sync_on_commit;
    opts.file_wrapper = [this](std::unique_ptr<FileHandle> base,
                               std::string_view role)
        -> std::unique_ptr<FileHandle> {
      if (role != "wal") return base;
      auto wrapped = std::make_unique<FaultInjectionFile>(std::move(base),
                                                          FaultSchedule{});
      wal_faults_ = wrapped.get();
      return wrapped;
    };
    return StorageEngine::Open(path_, opts).value();
  }

  // Freezes the live files into `crash_`, overwriting any earlier freeze.
  void FreezeCrashImage() {
    std::filesystem::copy_file(
        path_, crash_, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::copy_file(
        path_ + "-wal", crash_ + "-wal",
        std::filesystem::copy_options::overwrite_existing);
  }

  void CorruptWalByte(uint64_t offset) {
    std::fstream f(crash_ + "-wal",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b ^= 0x5a;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  std::filesystem::path dir_;
  std::string path_;
  std::string crash_;
  FaultInjectionFile* wal_faults_ = nullptr;
};

TEST_F(WalRecoveryTest, ReopenAfterKillBetweenCommitAndCheckpoint) {
  // The un-mutilated image: the WAL holds a complete commit for batch B
  // that never reached the main file. Recovery must replay it.
  auto engine = SetUpCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);

  // The recovered instance checkpointed on close; a further reopen of the
  // now self-contained image loses nothing either.
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, TruncatedTailFrameDropsWholeCommit) {
  auto engine = SetUpCrashImage();
  // Chop 100 bytes off the last frame: the frame that carries batch B's
  // commit marker is torn, so the entire commit must be discarded.
  const uint64_t wal_size = std::filesystem::file_size(crash_ + "-wal");
  ASSERT_GT(wal_size, 100u);
  std::filesystem::resize_file(crash_ + "-wal", wal_size - 100);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
  // Recovery truncated the torn tail on first open; reopening the settled
  // image yields the same state.
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, TruncatedToFrameBoundaryStillDropsCommit) {
  auto engine = SetUpCrashImage();
  // Remove exactly the last frame. The remaining frames of batch B are
  // individually valid but the commit marker is gone: still all-or-nothing.
  const uint64_t wal_size = std::filesystem::file_size(crash_ + "-wal");
  ASSERT_GE(wal_size, Wal::kFrameSize);
  std::filesystem::resize_file(crash_ + "-wal", wal_size - Wal::kFrameSize);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, TornCommitRecordDropsWholeCommit) {
  auto engine = SetUpCrashImage();
  // Flip one byte in the page image of the WAL's final frame (the commit
  // record): its checksum no longer matches, so batch B is discarded.
  const uint64_t wal_size = std::filesystem::file_size(crash_ + "-wal");
  CorruptWalByte(wal_size - Wal::kFrameSize + Wal::kFrameHeaderSize + 512);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, CorruptMidCommitFrameDropsFromThatPoint) {
  auto engine = SetUpCrashImage();
  // Corrupt the FIRST frame of the WAL (batch B spans several frames): the
  // commit is unusable from its first page on, so none of it survives.
  CorruptWalByte(Wal::kHeaderSize + Wal::kFrameHeaderSize + 512);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, NonConsecutiveCommitSeqIsDiscardedAsStaleTail) {
  // Commits within one WAL generation carry strictly consecutive
  // sequences. A tail whose sequence skips ahead can only be the remnant
  // of an aborted commit that a later, smaller commit partially overwrote;
  // recovery must refuse to stitch it into history.
  IoStats stats;
  const std::string wal_path = (dir_ / "wal").string();
  {
    auto wal = Wal::Open(wal_path, &stats).value();
    Page p;
    p.Zero();
    p.WriteU32(0, 1);
    ASSERT_TRUE(wal->AppendCommit({{3, &p}}, 1, false).ok());
    p.WriteU32(0, 2);
    ASSERT_TRUE(wal->AppendCommit({{3, &p}}, 3, false).ok());  // skips seq 2
  }
  auto wal = Wal::Open(wal_path, &stats).value();
  EXPECT_EQ(wal->frame_count(), 1u);           // only the seq-1 commit
  EXPECT_EQ(wal->last_committed_seq(), 1u);
  Page out;
  ASSERT_TRUE(wal->ReadFrame(1, &out).ok());
  EXPECT_EQ(out.ReadU32(0), 1u);
}

TEST_F(WalRecoveryTest, KillMidPartialCheckpointReplaysOnlyUnfoldedFrames) {
  // A pinned reader holds the backfill horizon after batch A, so the
  // checkpoint folds only A's frames and persists the watermark; the
  // crash image freezes a WAL whose folded prefix is A and whose
  // unfolded tail is B.
  auto engine = StorageEngine::Open(path_).value();
  EXPECT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  const uint64_t folded_frames = engine->pager()->wal_frame_count();
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());  // partial: folds A only
  ASSERT_EQ(engine->pager()->wal_backfill_watermark(), folded_frames);
  ASSERT_GT(engine->pager()->wal_frame_count(), folded_frames);
  std::filesystem::copy_file(path_, crash_);
  std::filesystem::copy_file(path_ + "-wal", crash_ + "-wal");

  // The watermark survived the crash, so recovery skips re-indexing the
  // folded prefix (A comes from the main file) and replays only the
  // unfolded tail (B).
  {
    IoStats stats;
    auto wal = Wal::Open(crash_ + "-wal", &stats).value();
    EXPECT_EQ(wal->backfill_watermark(), folded_frames);
    EXPECT_GT(wal->frame_count(), folded_frames);
  }
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, TornFoldedPrefixFallsBackToCheckpointedState) {
  // Same partial-checkpoint image as above, but with a byte shot into the
  // *folded* region. Recovery cannot anchor the commit chain on a torn
  // prefix, so it discards the whole log — losing only batch B, which was
  // never acknowledged durable — and serves the checkpointed main file.
  auto engine = StorageEngine::Open(path_).value();
  EXPECT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());  // partial: folds A only
  ASSERT_GT(engine->pager()->wal_backfill_watermark(), 0u);
  std::filesystem::copy_file(path_, crash_);
  std::filesystem::copy_file(path_ + "-wal", crash_ + "-wal");
  CorruptWalByte(Wal::kHeaderSize + Wal::kFrameHeaderSize + 512);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
  // The discarded log was truncated during recovery; a further reopen of
  // the settled image is stable.
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, CorruptWalHeaderOnlyCostsTheWatermark) {
  // Shoot a byte into the WAL *file header* (the watermark field). The
  // header checksum fails, recovery falls back to watermark 0 and simply
  // re-indexes every frame — batch B still replays.
  auto engine = SetUpCrashImage();
  CorruptWalByte(8);  // inside the backfill watermark field

  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, KillAfterCheckpointNeedsNoWal) {
  auto engine = SetUpCrashImage();
  // Checkpoint batch B too, then freeze. Recovery must not depend on the
  // WAL at all: simulate the crash image losing it entirely.
  ASSERT_TRUE(engine->Checkpoint().ok());
  std::filesystem::copy_file(path_, crash_,
                             std::filesystem::copy_options::overwrite_existing);
  ASSERT_TRUE(RemoveFileIfExists(crash_ + "-wal").ok());

  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

// --- Injected-fault matrix (FaultInjectionFile, no process kill) -----------

TEST_F(WalRecoveryTest, InjectedFrameWriteFaultFailsCommitAtomically) {
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/false);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());  // batch A -> main file

  // Fail the very next WAL write: batch B's commit places all its frames
  // with a single positional write, so this kills the commit before any
  // frame is published.
  FaultSchedule s;
  s.fail_write_at = wal_faults_->counters().writes + 1;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(CommitBatch(engine.get(), kBatchRows).ok());

  // A crash right now loses only the failed (never-acknowledged) commit.
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);

  // The live engine is not wedged: with the fault gone, the same batch
  // commits cleanly and the next crash image carries it.
  wal_faults_->set_schedule(FaultSchedule{});
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, InjectedTornCommitWriteLeavesRecoverableTail) {
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/false);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());

  // The commit write tears one-and-a-bit frames in, AND the best-effort
  // rollback truncate fails too — the worst case: an orphaned torn tail
  // really persists in the file (frame 1 of batch B is bit-perfect but
  // carries no commit marker; frame 2 is garbage).
  const FaultCounters before = wal_faults_->counters();
  FaultSchedule s;
  s.torn_write_at = before.writes + 1;
  s.torn_write_bytes = Wal::kFrameSize + 100;
  s.fail_truncate_at = before.truncates + 1;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(CommitBatch(engine.get(), kBatchRows).ok());

  // Restart recovery refuses to stitch the markerless tail into history.
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);

  // On the live engine the orphan blocks further commits until the guard
  // truncate succeeds; once the fault is gone the next commit retries it,
  // overwrites the tail, and lands.
  wal_faults_->set_schedule(FaultSchedule{});
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, InjectedCommitFsyncFaultIsStickyButLosesNoData) {
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/true);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());

  // Batch B's frames hit the file fine; the commit fsync fails, so the
  // commit is reported failed (its durability is unknown).
  FaultSchedule s;
  s.fail_sync_at = wal_faults_->counters().syncs + 1;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(CommitBatch(engine.get(), kBatchRows).ok());
  wal_faults_->set_schedule(FaultSchedule{});

  // Deterministic resolution of the ambiguity here: the underlying write
  // succeeded, so recovery finds a complete commit and replays it. Losing
  // an *unacknowledged* batch would also have been legal; inventing data
  // or tearing the batch would not.
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);

  // Post-failure fsync state is undefined, so the failure is sticky: even
  // with the fault disarmed, this pager refuses to acknowledge further
  // synced commits for its lifetime.
  EXPECT_FALSE(CommitBatch(engine.get(), 2 * kBatchRows).ok());
}

TEST_F(WalRecoveryTest, InjectedEintrRestartsAreInvisible) {
  // Every 2nd read on BOTH files is interrupted and restarted. The whole
  // write → checkpoint → cold-read cycle must behave identically.
  FaultSchedule s;
  s.eintr_every = 2;
  std::vector<FaultInjectionFile*> files;
  PagerOptions opts;
  opts.file_wrapper = [&files, &s](std::unique_ptr<FileHandle> base,
                                   std::string_view)
      -> std::unique_ptr<FileHandle> {
    auto wrapped = std::make_unique<FaultInjectionFile>(std::move(base), s);
    files.push_back(wrapped.get());
    return wrapped;
  };
  auto engine = StorageEngine::Open(path_, opts).value();
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());
  ASSERT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  engine->DropCaches();

  auto txn = engine->BeginRead().value();
  auto t = txn->OpenTable("t");
  ASSERT_TRUE(t.ok());
  uint64_t scanned = 0;
  BTreeCursor c = t->NewCursor();
  ASSERT_TRUE(c.SeekToFirst().ok());
  while (c.Valid()) {
    std::string_view k = c.key();
    uint64_t id = 0;
    ASSERT_TRUE(key::ConsumeU64(&k, &id));
    Result<std::string> v = c.value();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "row" + std::to_string(id));
    ++scanned;
    ASSERT_TRUE(c.Next().ok());
  }
  EXPECT_EQ(scanned, 2 * kBatchRows);

  uint64_t reads = 0;
  for (const FaultInjectionFile* f : files) reads += f->counters().reads;
  EXPECT_GT(reads, 0u);  // the schedule actually exercised restarts
}

}  // namespace
}  // namespace micronn

// WAL crash-recovery matrix at the engine level. Each case freezes the
// database files mid-life exactly as a power cut would (copying the main
// file + WAL while the engine is still open), mutilates the copy the way a
// specific crash would, and verifies the recovered row counts.
//
// Baseline for every case: batch A (100 rows) committed AND checkpointed
// into the main file, then batch B (100 rows) committed into the WAL only.
// Recovery must keep batch A in all cases; batch B survives iff its commit
// record is intact.
// A second, fully in-process matrix drives the same invariants through
// FaultInjectionFile (tests/support/): the WAL file handle itself fails a
// scheduled write/sync/truncate, so the failure surfaces as a commit error
// on the live engine — deterministic, no process kill, no copy timing.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "storage/engine.h"
#include "storage/key_encoding.h"
#include "storage/wal.h"
#include "support/fault_injection_file.h"

namespace micronn {
namespace {

constexpr uint64_t kBatchRows = 100;

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("micronn_walrec_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "db";
    crash_ = dir_ / "crash_db";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Status CommitRows(StorageEngine* engine, uint64_t start, uint64_t count) {
    MICRONN_ASSIGN_OR_RETURN(std::unique_ptr<WriteTransaction> txn,
                             engine->BeginWrite());
    Result<BTree> t = txn->OpenOrCreateTable("t");
    if (!t.ok()) {
      engine->Rollback(std::move(txn));
      return t.status();
    }
    for (uint64_t i = start; i < start + count; ++i) {
      Status st = t->Put(key::U64(i), "row" + std::to_string(i));
      if (!st.ok()) {
        engine->Rollback(std::move(txn));
        return st;
      }
    }
    txn->AddRowDelta("t", static_cast<int64_t>(count));
    return engine->Commit(std::move(txn));
  }

  Status CommitBatch(StorageEngine* engine, uint64_t start) {
    return CommitRows(engine, start, kBatchRows);
  }

  // Opens a fresh db, commits + checkpoints batch A, commits batch B into
  // the WAL, then freezes both files into `crash_` while the engine is
  // still open (no close-time checkpoint runs). Returns the open engine so
  // callers control when it dies.
  std::unique_ptr<StorageEngine> SetUpCrashImage() {
    auto engine = StorageEngine::Open(path_).value();
    EXPECT_TRUE(CommitBatch(engine.get(), 0).ok());
    EXPECT_TRUE(engine->Checkpoint().ok());  // batch A -> main file
    EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());  // B -> WAL
    std::filesystem::copy_file(path_, crash_);
    std::filesystem::copy_file(path_ + "-wal", crash_ + "-wal");
    return engine;
  }

  uint64_t RecoveredRowCount() {
    auto engine = StorageEngine::Open(crash_).value();
    auto txn = engine->BeginRead().value();
    auto info = txn->GetTableInfo("t");
    EXPECT_TRUE(info.ok());
    const uint64_t catalog_count = info.ok() ? info->row_count : 0;
    // Cross-check the catalog count against a real scan.
    auto t = txn->OpenTable("t");
    EXPECT_TRUE(t.ok());
    uint64_t scanned = 0;
    if (t.ok()) {
      BTreeCursor c = t->NewCursor();
      EXPECT_TRUE(c.SeekToFirst().ok());
      while (c.Valid()) {
        ++scanned;
        EXPECT_TRUE(c.Next().ok());
      }
    }
    EXPECT_EQ(scanned, catalog_count);
    return catalog_count;
  }

  // Opens the engine with the WAL file wrapped in a FaultInjectionFile
  // (no faults armed yet — tests read counters() and arm a schedule at
  // exactly the operation under test). The wrapper pointer stays valid for
  // the engine's lifetime; it is owned by the pager.
  std::unique_ptr<StorageEngine> OpenWithWalFaults(bool sync_on_commit) {
    PagerOptions opts;
    opts.sync_on_commit = sync_on_commit;
    opts.file_wrapper = [this](std::unique_ptr<FileHandle> base,
                               std::string_view role)
        -> std::unique_ptr<FileHandle> {
      if (role != "wal") return base;
      auto wrapped = std::make_unique<FaultInjectionFile>(std::move(base),
                                                          FaultSchedule{});
      wal_faults_ = wrapped.get();
      return wrapped;
    };
    return StorageEngine::Open(path_, opts).value();
  }

  // Freezes the live files into `crash_`, overwriting any earlier freeze.
  void FreezeCrashImage() {
    std::filesystem::copy_file(
        path_, crash_, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::copy_file(
        path_ + "-wal", crash_ + "-wal",
        std::filesystem::copy_options::overwrite_existing);
  }

  void CorruptWalByte(uint64_t offset) {
    std::fstream f(crash_ + "-wal",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b ^= 0x5a;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  std::filesystem::path dir_;
  std::string path_;
  std::string crash_;
  FaultInjectionFile* wal_faults_ = nullptr;
};

TEST_F(WalRecoveryTest, ReopenAfterKillBetweenCommitAndCheckpoint) {
  // The un-mutilated image: the WAL holds a complete commit for batch B
  // that never reached the main file. Recovery must replay it.
  auto engine = SetUpCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);

  // The recovered instance checkpointed on close; a further reopen of the
  // now self-contained image loses nothing either.
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, TruncatedTailFrameDropsWholeCommit) {
  auto engine = SetUpCrashImage();
  // Chop 100 bytes off the last frame: the frame that carries batch B's
  // commit marker is torn, so the entire commit must be discarded.
  const uint64_t wal_size = std::filesystem::file_size(crash_ + "-wal");
  ASSERT_GT(wal_size, 100u);
  std::filesystem::resize_file(crash_ + "-wal", wal_size - 100);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
  // Recovery truncated the torn tail on first open; reopening the settled
  // image yields the same state.
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, TruncatedToFrameBoundaryStillDropsCommit) {
  auto engine = SetUpCrashImage();
  // Remove exactly the last frame. The remaining frames of batch B are
  // individually valid but the commit marker is gone: still all-or-nothing.
  const uint64_t wal_size = std::filesystem::file_size(crash_ + "-wal");
  ASSERT_GE(wal_size, Wal::kFrameSize);
  std::filesystem::resize_file(crash_ + "-wal", wal_size - Wal::kFrameSize);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, TornCommitRecordDropsWholeCommit) {
  auto engine = SetUpCrashImage();
  // Flip one byte in the page image of the WAL's final frame (the commit
  // record): its checksum no longer matches, so batch B is discarded.
  const uint64_t wal_size = std::filesystem::file_size(crash_ + "-wal");
  CorruptWalByte(wal_size - Wal::kFrameSize + Wal::kFrameHeaderSize + 512);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, CorruptMidCommitFrameDropsFromThatPoint) {
  auto engine = SetUpCrashImage();
  // Corrupt the FIRST frame of the WAL (batch B spans several frames): the
  // commit is unusable from its first page on, so none of it survives.
  CorruptWalByte(Wal::kHeaderSize + Wal::kFrameHeaderSize + 512);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, NonConsecutiveCommitSeqIsDiscardedAsStaleTail) {
  // Commits within one WAL generation carry strictly consecutive
  // sequences. A tail whose sequence skips ahead can only be the remnant
  // of an aborted commit that a later, smaller commit partially overwrote;
  // recovery must refuse to stitch it into history.
  IoStats stats;
  const std::string wal_path = (dir_ / "wal").string();
  {
    auto wal = Wal::Open(wal_path, &stats).value();
    Page p;
    p.Zero();
    p.WriteU32(0, 1);
    ASSERT_TRUE(wal->AppendCommit({{3, &p}}, 1, false).ok());
    p.WriteU32(0, 2);
    ASSERT_TRUE(wal->AppendCommit({{3, &p}}, 3, false).ok());  // skips seq 2
  }
  auto wal = Wal::Open(wal_path, &stats).value();
  EXPECT_EQ(wal->frame_count(), 1u);           // only the seq-1 commit
  EXPECT_EQ(wal->last_committed_seq(), 1u);
  Page out;
  ASSERT_TRUE(wal->ReadFrame(1, &out).ok());
  EXPECT_EQ(out.ReadU32(0), 1u);
}

TEST_F(WalRecoveryTest, KillMidPartialCheckpointReplaysOnlyUnfoldedFrames) {
  // A pinned reader holds the backfill horizon after batch A, so the
  // checkpoint folds only A's frames and persists the watermark; the
  // crash image freezes a WAL whose folded prefix is A and whose
  // unfolded tail is B.
  auto engine = StorageEngine::Open(path_).value();
  EXPECT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  const uint64_t folded_frames = engine->pager()->wal_frame_count();
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());  // partial: folds A only
  ASSERT_EQ(engine->pager()->wal_backfill_watermark(), folded_frames);
  ASSERT_GT(engine->pager()->wal_frame_count(), folded_frames);
  std::filesystem::copy_file(path_, crash_);
  std::filesystem::copy_file(path_ + "-wal", crash_ + "-wal");

  // The watermark survived the crash, so recovery skips re-indexing the
  // folded prefix (A comes from the main file) and replays only the
  // unfolded tail (B).
  {
    IoStats stats;
    auto wal = Wal::Open(crash_ + "-wal", &stats).value();
    EXPECT_EQ(wal->backfill_watermark(), folded_frames);
    EXPECT_GT(wal->frame_count(), folded_frames);
  }
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, TornFoldedPrefixFallsBackToCheckpointedState) {
  // Same partial-checkpoint image as above, but with a byte shot into the
  // *folded* region. Recovery cannot anchor the commit chain on a torn
  // prefix, so it discards the whole log — losing only batch B, which was
  // never acknowledged durable — and serves the checkpointed main file.
  auto engine = StorageEngine::Open(path_).value();
  EXPECT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());  // partial: folds A only
  ASSERT_GT(engine->pager()->wal_backfill_watermark(), 0u);
  std::filesystem::copy_file(path_, crash_);
  std::filesystem::copy_file(path_ + "-wal", crash_ + "-wal");
  CorruptWalByte(Wal::kHeaderSize + Wal::kFrameHeaderSize + 512);

  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
  // The discarded log was truncated during recovery; a further reopen of
  // the settled image is stable.
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, CorruptWalHeaderOnlyCostsTheWatermark) {
  // Shoot a byte into the WAL *file header* (the watermark field). The
  // header checksum fails, recovery falls back to watermark 0 and simply
  // re-indexes every frame — batch B still replays.
  auto engine = SetUpCrashImage();
  CorruptWalByte(8);  // inside the backfill watermark field

  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, KillAfterCheckpointNeedsNoWal) {
  auto engine = SetUpCrashImage();
  // Checkpoint batch B too, then freeze. Recovery must not depend on the
  // WAL at all: simulate the crash image losing it entirely.
  ASSERT_TRUE(engine->Checkpoint().ok());
  std::filesystem::copy_file(path_, crash_,
                             std::filesystem::copy_options::overwrite_existing);
  ASSERT_TRUE(RemoveFileIfExists(crash_ + "-wal").ok());

  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

// --- Injected-fault matrix (FaultInjectionFile, no process kill) -----------

TEST_F(WalRecoveryTest, InjectedFrameWriteFaultFailsCommitAtomically) {
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/false);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());  // batch A -> main file

  // Fail the very next WAL write: batch B's commit places all its frames
  // with a single positional write, so this kills the commit before any
  // frame is published.
  FaultSchedule s;
  s.fail_write_at = wal_faults_->counters().writes + 1;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(CommitBatch(engine.get(), kBatchRows).ok());

  // A crash right now loses only the failed (never-acknowledged) commit.
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);

  // The live engine is not wedged: with the fault gone, the same batch
  // commits cleanly and the next crash image carries it.
  wal_faults_->set_schedule(FaultSchedule{});
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, InjectedTornCommitWriteLeavesRecoverableTail) {
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/false);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());

  // The commit write tears one-and-a-bit frames in, AND the best-effort
  // rollback truncate fails too — the worst case: an orphaned torn tail
  // really persists in the file (frame 1 of batch B is bit-perfect but
  // carries no commit marker; frame 2 is garbage).
  const FaultCounters before = wal_faults_->counters();
  FaultSchedule s;
  s.torn_write_at = before.writes + 1;
  s.torn_write_bytes = Wal::kFrameSize + 100;
  s.fail_truncate_at = before.truncates + 1;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(CommitBatch(engine.get(), kBatchRows).ok());

  // Restart recovery refuses to stitch the markerless tail into history.
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);

  // On the live engine the orphan blocks further commits until the guard
  // truncate succeeds; once the fault is gone the next commit retries it,
  // overwrites the tail, and lands.
  wal_faults_->set_schedule(FaultSchedule{});
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, InjectedCommitFsyncFaultIsStickyButLosesNoData) {
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/true);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());

  // Batch B's frames hit the file fine; the commit fsync fails, so the
  // commit is reported failed (its durability is unknown).
  FaultSchedule s;
  s.fail_sync_at = wal_faults_->counters().syncs + 1;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(CommitBatch(engine.get(), kBatchRows).ok());
  wal_faults_->set_schedule(FaultSchedule{});

  // Deterministic resolution of the ambiguity here: the underlying write
  // succeeded, so recovery finds a complete commit and replays it. Losing
  // an *unacknowledged* batch would also have been legal; inventing data
  // or tearing the batch would not.
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);

  // Post-failure fsync state is undefined, so the failure is sticky: even
  // with the fault disarmed, this pager refuses to acknowledge further
  // synced commits for its lifetime.
  EXPECT_FALSE(CommitBatch(engine.get(), 2 * kBatchRows).ok());
}

TEST_F(WalRecoveryTest, InjectedEintrRestartsAreInvisible) {
  // Every 2nd read on BOTH files is interrupted and restarted. The whole
  // write → checkpoint → cold-read cycle must behave identically.
  FaultSchedule s;
  s.eintr_every = 2;
  std::vector<FaultInjectionFile*> files;
  PagerOptions opts;
  opts.file_wrapper = [&files, &s](std::unique_ptr<FileHandle> base,
                                   std::string_view)
      -> std::unique_ptr<FileHandle> {
    auto wrapped = std::make_unique<FaultInjectionFile>(std::move(base), s);
    files.push_back(wrapped.get());
    return wrapped;
  };
  auto engine = StorageEngine::Open(path_, opts).value();
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());
  ASSERT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  engine->DropCaches();

  auto txn = engine->BeginRead().value();
  auto t = txn->OpenTable("t");
  ASSERT_TRUE(t.ok());
  uint64_t scanned = 0;
  BTreeCursor c = t->NewCursor();
  ASSERT_TRUE(c.SeekToFirst().ok());
  while (c.Valid()) {
    std::string_view k = c.key();
    uint64_t id = 0;
    ASSERT_TRUE(key::ConsumeU64(&k, &id));
    Result<std::string> v = c.value();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "row" + std::to_string(id));
    ++scanned;
    ASSERT_TRUE(c.Next().ok());
  }
  EXPECT_EQ(scanned, 2 * kBatchRows);

  uint64_t reads = 0;
  for (const FaultInjectionFile* f : files) reads += f->counters().reads;
  EXPECT_GT(reads, 0u);  // the schedule actually exercised restarts
}

// --- Wrap-around matrix (WAL format v3 epochs) ------------------------------

TEST_F(WalRecoveryTest, WrapAroundReusesPrefixAndRecovers) {
  // Batch A committed, snapshot pinned AFTER the commit (so the reader
  // horizon covers everything), checkpoint: the fold completes, the
  // pinned reader blocks the truncating reset, and the wrap-around opens
  // generation 1 at slot 1 without shrinking the file.
  auto engine = StorageEngine::Open(path_).value();
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  ASSERT_GT(engine->pager()->wal_frame_count(), 0u);
  const uint64_t size_before = std::filesystem::file_size(path_ + "-wal");
  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_EQ(engine->pager()->wal_epoch(), 1u);
  EXPECT_EQ(engine->pager()->wal_frame_count(), 0u);
  EXPECT_EQ(engine->pager()->wal_backfill_watermark(), 0u);
  // Not truncated: batch A's frames linger as stale survivors for the new
  // generation to overwrite slot by slot.
  EXPECT_EQ(std::filesystem::file_size(path_ + "-wal"), size_before);

  // Batch B lands in the reclaimed slots; a crash now must recover both
  // batches (A from the main file, B from the generation-1 frames), and
  // must NOT resurrect any stale generation-0 survivor past B's tail.
  ASSERT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  FreezeCrashImage();
  {
    IoStats stats;
    auto wal = Wal::Open(crash_ + "-wal", &stats).value();
    EXPECT_EQ(wal->epoch(), 1u);
    EXPECT_EQ(wal->frame_count(), engine->pager()->wal_frame_count());
  }
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, CrashBetweenEpochBumpAndFirstWrappedFrame) {
  // The narrowest wrap-around window: the new epoch is durable in the
  // header but no generation-1 frame exists yet. Recovery must see an
  // empty log (the slot-1 survivor's epoch mismatches) over the fully
  // folded main file — batch A intact, nothing invented.
  auto engine = StorageEngine::Open(path_).value();
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  ASSERT_TRUE(engine->Checkpoint().ok());  // full fold + wrap
  ASSERT_EQ(engine->pager()->wal_epoch(), 1u);
  FreezeCrashImage();
  {
    IoStats stats;
    auto wal = Wal::Open(crash_ + "-wal", &stats).value();
    EXPECT_EQ(wal->epoch(), 1u);
    EXPECT_EQ(wal->frame_count(), 0u);
    EXPECT_EQ(wal->last_committed_seq(), 0u);
  }
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);
}

TEST_F(WalRecoveryTest, InjectedTornEpochHeaderWriteFailsWrapSafely) {
  // Fail the wrap's header rewrite (WAL write #2 of the checkpoint: #1 is
  // the watermark advance). The checkpoint reports failure, the old
  // generation stays live and fully folded, and no acked commit is lost —
  // before or after a crash.
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/false);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  const uint64_t frames = engine->pager()->wal_frame_count();
  FaultSchedule s;
  s.fail_write_at = wal_faults_->counters().writes + 2;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(engine->Checkpoint().ok());
  wal_faults_->set_schedule(FaultSchedule{});
  EXPECT_EQ(engine->pager()->wal_epoch(), 0u);
  EXPECT_EQ(engine->pager()->wal_frame_count(), frames);
  EXPECT_EQ(engine->pager()->wal_backfill_watermark(), frames);

  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);

  // The live engine keeps committing (unsynced commits never consult the
  // sticky sync flag) and the next crash image carries batch B too.
  ASSERT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, InjectedEpochHeaderFsyncFailureKeepsOldGeneration) {
  // Fail the wrap's header fsync instead (WAL sync #2: #1 is the fold
  // sync). In memory the old generation stays live; on disk the header
  // may already carry the new epoch — recovery then sees an empty log
  // over the fully folded main file, losing only unsynced commits, which
  // is the documented contract without sync_on_commit.
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/false);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  const uint64_t frames = engine->pager()->wal_frame_count();
  FaultSchedule s;
  s.fail_sync_at = wal_faults_->counters().syncs + 2;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(engine->Checkpoint().ok());
  wal_faults_->set_schedule(FaultSchedule{});
  EXPECT_EQ(engine->pager()->wal_epoch(), 0u);
  EXPECT_EQ(engine->pager()->wal_frame_count(), frames);
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);

  // The old generation keeps accepting commits, and a later successful
  // checkpoint (fold + wrap) squares the header away again. Refresh the
  // pin past the new commit so the fold can complete (rolling-pin style).
  ASSERT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  pinned.reset();
  pinned = engine->BeginRead().value();
  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_EQ(engine->pager()->wal_epoch(), 1u);
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, InjectedTornFirstWrappedFrameDropsOnlyThatCommit) {
  // Clean wrap, then batch B's commit write tears one-and-a-bit frames
  // into the reclaimed prefix (worst case: the rollback truncate fails
  // too, so the torn tail persists). Recovery must drop B atomically and
  // must not resurrect the stale generation-0 frames behind the tear.
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/false);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  ASSERT_TRUE(engine->Checkpoint().ok());
  ASSERT_EQ(engine->pager()->wal_epoch(), 1u);

  const FaultCounters before = wal_faults_->counters();
  FaultSchedule s;
  s.torn_write_at = before.writes + 1;
  s.torn_write_bytes = Wal::kFrameSize + 100;
  s.fail_truncate_at = before.truncates + 1;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(CommitBatch(engine.get(), kBatchRows).ok());
  wal_faults_->set_schedule(FaultSchedule{});

  FreezeCrashImage();
  {
    // Row counts alone cannot prove survivors stayed dead (their content
    // is already folded, so replaying one is invisible to a scan); check
    // the recovered log directly.
    IoStats stats;
    auto wal = Wal::Open(crash_ + "-wal", &stats).value();
    EXPECT_EQ(wal->frame_count(), 0u);
    EXPECT_EQ(wal->epoch(), 1u);
  }
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);

  // Live engine: the dirty-tail guard re-truncates before the retried
  // commit's write, which then lands in the reclaimed slots.
  EXPECT_TRUE(CommitBatch(engine.get(), kBatchRows).ok());
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 2 * kBatchRows);
}

TEST_F(WalRecoveryTest, CommitStraddlingWrapBoundarySurvives) {
  // After a wrap, a commit larger than the previous generation overwrites
  // every reclaimed slot AND extends past the old end of file in one
  // positional write. Clean case: everything recovers.
  auto engine = StorageEngine::Open(path_).value();
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  const uint64_t stale_frames = engine->pager()->wal_frame_count();
  ASSERT_TRUE(engine->Checkpoint().ok());
  ASSERT_EQ(engine->pager()->wal_epoch(), 1u);

  ASSERT_TRUE(CommitRows(engine.get(), kBatchRows, 3 * kBatchRows).ok());
  ASSERT_GT(engine->pager()->wal_frame_count(), stale_frames)
      << "batch B must straddle the old generation's end for this test";
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 4 * kBatchRows);
}

TEST_F(WalRecoveryTest, InjectedTearAtWrapStraddlePointDropsCommit) {
  // Same straddling commit, torn exactly past the old generation's last
  // slot: the prefix inside the reclaimed region is bit-perfect (epoch 1,
  // no marker yet), the extension is garbage. All-or-nothing must hold.
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/false);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  auto pinned = engine->BeginRead().value();
  const uint64_t stale_frames = engine->pager()->wal_frame_count();
  ASSERT_TRUE(engine->Checkpoint().ok());
  ASSERT_EQ(engine->pager()->wal_epoch(), 1u);

  FaultSchedule s;
  s.torn_write_at = wal_faults_->counters().writes + 1;
  s.torn_write_bytes = stale_frames * Wal::kFrameSize + 100;
  s.fail_truncate_at = wal_faults_->counters().truncates + 1;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(CommitRows(engine.get(), kBatchRows, 3 * kBatchRows).ok());
  wal_faults_->set_schedule(FaultSchedule{});

  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);

  EXPECT_TRUE(CommitRows(engine.get(), kBatchRows, 3 * kBatchRows).ok());
  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), 4 * kBatchRows);
}

TEST_F(WalRecoveryTest, InjectedPipelinedFlushWriteFailureAcksNothing) {
  // Commit pipelining (sync_on_commit + commit_pipeline): the frames are
  // staged and the group-commit leader's one batched write fails. Nothing
  // reached the file, so a crash image holds batch A only; the live
  // engine applies the sticky no-ack rule exactly as for a failed fsync.
  auto engine = OpenWithWalFaults(/*sync_on_commit=*/true);
  ASSERT_TRUE(engine->pager()->options().commit_pipeline);
  ASSERT_TRUE(CommitBatch(engine.get(), 0).ok());
  ASSERT_TRUE(engine->Checkpoint().ok());

  FaultSchedule s;
  s.fail_write_at = wal_faults_->counters().writes + 1;
  wal_faults_->set_schedule(s);
  EXPECT_FALSE(CommitBatch(engine.get(), kBatchRows).ok());
  wal_faults_->set_schedule(FaultSchedule{});

  FreezeCrashImage();
  EXPECT_EQ(RecoveredRowCount(), kBatchRows);

  // Sticky: no later synced commit is acknowledged by this pager.
  EXPECT_FALSE(CommitBatch(engine.get(), 2 * kBatchRows).ok());
}

TEST_F(WalRecoveryTest, StaleSurvivorsIgnoredAfterWrapRestart) {
  // WAL-level wrap semantics, no engine: two folded commits, wrap, one
  // generation-1 commit. Recovery must index exactly the new commit and
  // shed the two stale survivors (whose checksums are still perfect).
  IoStats stats;
  const std::string wal_path = (dir_ / "wal").string();
  const std::string copy_path = (dir_ / "wal_crash").string();
  auto wal = Wal::Open(wal_path, &stats).value();
  Page p;
  p.Zero();
  p.WriteU32(0, 11);
  ASSERT_TRUE(wal->AppendCommit({{3, &p}}, 1, false).ok());
  p.WriteU32(0, 22);
  ASSERT_TRUE(wal->AppendCommit({{4, &p}}, 2, false).ok());
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(wal->AdvanceBackfillWatermark(2, 2).ok());
  ASSERT_TRUE(wal->WrapRestart().ok());
  EXPECT_EQ(wal->epoch(), 1u);
  EXPECT_EQ(wal->frame_count(), 0u);

  // Crash before any generation-1 frame: an empty epoch-1 log.
  std::filesystem::copy_file(wal_path, copy_path);
  {
    auto crashed = Wal::Open(copy_path, &stats).value();
    EXPECT_EQ(crashed->epoch(), 1u);
    EXPECT_EQ(crashed->frame_count(), 0u);
  }

  p.WriteU32(0, 33);
  ASSERT_TRUE(wal->AppendCommit({{5, &p}}, 3, false).ok());
  std::filesystem::copy_file(
      wal_path, copy_path, std::filesystem::copy_options::overwrite_existing);
  {
    auto crashed = Wal::Open(copy_path, &stats).value();
    EXPECT_EQ(crashed->epoch(), 1u);
    EXPECT_EQ(crashed->frame_count(), 1u);
    EXPECT_EQ(crashed->last_committed_seq(), 3u);
    ASSERT_TRUE(crashed->FindFrame(5, 3).has_value());
    Page out;
    ASSERT_TRUE(crashed->ReadFrame(1, &out).ok());
    EXPECT_EQ(out.ReadU32(0), 33u);
    EXPECT_FALSE(crashed->FindFrame(3, 3).has_value());  // stale survivor
    EXPECT_FALSE(crashed->FindFrame(4, 3).has_value());
  }
}

TEST_F(WalRecoveryTest, FormatV2HeaderStillOpens) {
  // A pre-epoch (v2) header must open as generation 0 with every frame
  // intact: v2 frames carry a zero where the epoch now lives, covered by
  // the same checksum, so only the file header differs.
  IoStats stats;
  const std::string wal_path = (dir_ / "wal").string();
  {
    auto wal = Wal::Open(wal_path, &stats).value();
    Page p;
    p.Zero();
    p.WriteU32(0, 77);
    ASSERT_TRUE(wal->AppendCommit({{9, &p}}, 1, false).ok());
  }
  {
    // Rewrite the file header in the v2 layout (no epoch field).
    struct V2Header {
      uint32_t magic;
      uint32_t version;
      uint64_t backfill_watermark;
      uint64_t backfill_seq;
      uint64_t checksum;
    } h;
    h.magic = Wal::kWalMagic;
    h.version = 2;
    h.backfill_watermark = 0;
    h.backfill_seq = 0;
    h.checksum = Hash64(&h, offsetof(V2Header, checksum));
    uint8_t raw[Wal::kHeaderSize] = {0};
    std::memcpy(raw, &h, sizeof(h));
    std::fstream f(wal_path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.write(reinterpret_cast<const char*>(raw), Wal::kHeaderSize);
  }
  auto wal = Wal::Open(wal_path, &stats).value();
  EXPECT_EQ(wal->epoch(), 0u);
  EXPECT_EQ(wal->frame_count(), 1u);
  Page out;
  ASSERT_TRUE(wal->ReadFrame(1, &out).ok());
  EXPECT_EQ(out.ReadU32(0), 77u);
}

}  // namespace
}  // namespace micronn

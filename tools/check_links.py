#!/usr/bin/env python3
"""Checks relative links in Markdown files.

Usage: check_links.py FILE [FILE...]

For every inline Markdown link `[text](target)` whose target is not an
absolute URL or an in-page anchor, verifies that the referenced path
exists relative to the linking file's directory (anchors within existing
files are accepted without validation; pure file existence is the
contract). Exits non-zero listing every broken link.
"""

import os
import re
import sys

# Inline links, excluding images' alt-text edge cases we don't use.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def check_file(path):
    broken = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    # Strip fenced code blocks: link-looking text inside them is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    base = os.path.dirname(os.path.abspath(path))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            broken.append((target, resolved))
    return broken


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        for target, resolved in check_file(path):
            print(f"{path}: broken link '{target}' -> {resolved}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"ok: {len(argv) - 1} file(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

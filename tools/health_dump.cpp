// health_dump: open a MicroNN database and print DB::Health() as one JSON
// object on stdout. CI uploads this next to bench artifacts; operators use
// it to answer "why is this database slow / read-only" without a debugger.
//
//   health_dump <path> [--scrub]
//
// --scrub runs a full scrub pass first (repairing what the WAL still
// covers) and reports the post-scrub state.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/db.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <db-path> [--scrub]\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  bool scrub = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scrub") == 0) scrub = true;
  }
  micronn::DbOptions options;  // dim resolves from the stored metadata
  micronn::Result<std::unique_ptr<micronn::DB>> db =
      micronn::DB::Open(path, options);
  if (!db.ok()) {
    std::fprintf(stderr, "open %s: %s\n", path.c_str(),
                 db.status().ToString().c_str());
    return 1;
  }
  if (scrub) {
    micronn::Result<micronn::ScrubReport> report = (*db)->Scrub();
    if (!report.ok()) {
      std::fprintf(stderr, "scrub: %s\n", report.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("%s\n", (*db)->Health().ToJson().c_str());
  return 0;
}
